(** Persistent analysis-cache tests: warm runs must replay cold results
    byte-identically, invalidation must be exact (edited file, edited
    callee, profile switch, [--contexts], the per-analyzer [--budget-*]
    slices), corrupt or mismatched entries must read as misses, and a
    shared cache directory must be transparent at any pool size. *)

module Store = Phplang.Store

(* ------------------------------------------------------------------ *)
(* Helpers                                                            *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let dir_seq = ref 0

(* Fresh cache directory for the duration of [f]; the store is always
   disabled again afterwards (tests must not leak a root into each other). *)
let with_cache_dir f =
  incr dir_seq;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "phpsafe-test-cache-%d-%d" (Unix.getpid ()) !dir_seq)
  in
  rm_rf dir;
  Sys.mkdir dir 0o755;
  Store.set_root (Some dir);
  Fun.protect
    ~finally:(fun () ->
      Store.set_root None;
      rm_rf dir)
    (fun () -> f dir)

let project name files =
  Phplang.Project.make ~name
    (List.map (fun (path, source) -> { Phplang.Project.path; source }) files)

let result_stats () =
  match
    List.find_opt
      (fun (s : Store.stats) -> String.equal s.Store.ns "result")
      (Store.counters ())
  with
  | Some s -> (s.Store.hits, s.Store.misses)
  | None -> (0, 0)

(* Result-cache hits/misses attributable to [f] alone. *)
let result_delta f =
  let h0, m0 = result_stats () in
  let v = f () in
  let h1, m1 = result_stats () in
  (v, h1 - h0, m1 - m0)

let tools : Secflow.Tool.t list = [ Phpsafe.tool; Rips.tool; Pixy.tool ]

let vuln_file path =
  (path, Printf.sprintf "<?php\n$x = $_GET['%s'];\necho $x;\n" path)

let check_result = Alcotest.testable (fun ppf _ -> Fmt.string ppf "<result>")
    (fun (a : Secflow.Report.result) b -> a = b)

let case = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Warm replay                                                        *)
(* ------------------------------------------------------------------ *)

let replay_cases =
  List.map
    (fun (tool : Secflow.Tool.t) ->
      case (tool.Secflow.Tool.name ^ ": warm run replays cold results") `Quick
        (fun () ->
          with_cache_dir @@ fun _dir ->
          let p = project "warm" [ vuln_file "a.php"; vuln_file "b.php" ] in
          let cold, _, cold_misses =
            result_delta (fun () -> tool.Secflow.Tool.analyze_project p)
          in
          let warm, warm_hits, warm_misses =
            result_delta (fun () -> tool.Secflow.Tool.analyze_project p)
          in
          Alcotest.check check_result "identical results" cold warm;
          Alcotest.(check bool) "cold run missed" true (cold_misses > 0);
          Alcotest.(check bool) "warm run replayed" true (warm_hits > 0);
          Alcotest.(check int) "warm run fully cached" 0 warm_misses))
    tools

(* ------------------------------------------------------------------ *)
(* Exact invalidation                                                 *)
(* ------------------------------------------------------------------ *)

let edited_file_case =
  case "editing a file invalidates exactly that file" `Quick (fun () ->
      with_cache_dir @@ fun _dir ->
      let p1 = project "edit" [ vuln_file "a.php"; vuln_file "b.php" ] in
      ignore (Rips.tool.Secflow.Tool.analyze_project p1);
      (* b.php gains a line, moving its sink *)
      let p2 =
        project "edit"
          [ vuln_file "a.php";
            ("b.php", "<?php\n$pad = 1;\n$x = $_GET['b.php'];\necho $x;\n") ]
      in
      let r2, hits, misses =
        result_delta (fun () -> Rips.tool.Secflow.Tool.analyze_project p2)
      in
      Alcotest.(check int) "unchanged a.php replayed" 1 hits;
      Alcotest.(check int) "edited b.php re-analyzed" 1 misses;
      Alcotest.(check bool) "new sink line reported" true
        (List.exists
           (fun (f : Secflow.Report.finding) ->
             f.Secflow.Report.sink_pos.Phplang.Ast.line = 4
             && String.equal f.Secflow.Report.sink_pos.Phplang.Ast.file "b.php")
           r2.Secflow.Report.findings))

let edited_callee_case =
  case "editing an included callee invalidates the includer" `Quick (fun () ->
      with_cache_dir @@ fun _dir ->
      let main body =
        ("main.php",
         "<?php\ninclude 'lib.php';\necho clean($_GET['q']);\n" ^ body)
      in
      let lib body = ("lib.php", "<?php\nfunction clean($x) { " ^ body ^ " }\n") in
      let p1 = project "callee" [ main ""; lib "return $x;" ] in
      let r1 = Phpsafe.tool.Secflow.Tool.analyze_project p1 in
      Alcotest.(check bool) "passthrough callee leaks taint" true
        (r1.Secflow.Report.findings <> []);
      (* only lib.php changes; main.php's bytes are untouched, but its
         include closure digest differs, so its entry must not replay *)
      let p2 = project "callee" [ main ""; lib "return htmlspecialchars($x);" ] in
      let r2, _, misses =
        result_delta (fun () -> Phpsafe.tool.Secflow.Tool.analyze_project p2)
      in
      Alcotest.(check bool) "sanitizing callee silences the sink" true
        (r2.Secflow.Report.findings = []);
      Alcotest.(check bool) "includer re-analyzed, not replayed" true
        (misses > 0);
      let r3, hits3, misses3 =
        result_delta (fun () -> Phpsafe.tool.Secflow.Tool.analyze_project p2)
      in
      Alcotest.check check_result "edited project replays warm" r2 r3;
      Alcotest.(check bool) "second run replays" true (hits3 > 0);
      Alcotest.(check int) "second run fully cached" 0 misses3)

let opts_cases =
  let p () = project "opts" [ vuln_file "a.php" ] in
  [
    case "profile switch misses instead of reusing" `Quick (fun () ->
        with_cache_dir @@ fun _dir ->
        ignore (Phpsafe.analyze_project (p ()));
        let drupal =
          { Phpsafe.default_options with
            Phpsafe.config = Phpsafe.Drupal.default_config }
        in
        let _, hits, misses =
          result_delta (fun () -> Phpsafe.analyze_project ~opts:drupal (p ()))
        in
        Alcotest.(check int) "no WordPress entry reused" 0 hits;
        Alcotest.(check bool) "analyzed afresh" true (misses > 0);
        let _, hits2, _ =
          result_delta (fun () -> Phpsafe.analyze_project ~opts:drupal (p ()))
        in
        Alcotest.(check bool) "same profile replays" true (hits2 > 0));
    case "--contexts toggle misses instead of reusing" `Quick (fun () ->
        with_cache_dir @@ fun _dir ->
        ignore (Phpsafe.analyze_project (p ()));
        let ctx =
          { Phpsafe.default_options with Phpsafe.infer_contexts = true }
        in
        let _, hits, misses =
          result_delta (fun () -> Phpsafe.analyze_project ~opts:ctx (p ()))
        in
        Alcotest.(check int) "no context-free entry reused" 0 hits;
        Alcotest.(check bool) "analyzed afresh" true (misses > 0));
    case "--flow toggle misses instead of reusing" `Quick (fun () ->
        with_cache_dir @@ fun _dir ->
        ignore (Phpsafe.analyze_project (p ()));
        let flow =
          { Phpsafe.default_options with Phpsafe.flow_sensitive = true }
        in
        let _, hits, misses =
          result_delta (fun () -> Phpsafe.analyze_project ~opts:flow (p ()))
        in
        Alcotest.(check int) "no flat entry reused" 0 hits;
        Alcotest.(check bool) "analyzed afresh" true (misses > 0);
        let _, hits2, _ =
          result_delta (fun () -> Phpsafe.analyze_project ~opts:flow (p ()))
        in
        Alcotest.(check bool) "same mode replays" true (hits2 > 0));
    case "fixpoint cap joins phpSAFE's key only under --flow" `Quick
      (fun () ->
        (* the flow walk consults [fixpoint_passes], so bumping the cap
           must invalidate flow-mode entries — while flat-mode entries
           stay insensitive to it (asserted in the budget-slice case) *)
        with_cache_dir @@ fun _dir ->
        let d = Secflow.Budget.default in
        Fun.protect ~finally:Secflow.Budget.reset @@ fun () ->
        Secflow.Budget.set d;
        let flow =
          { Phpsafe.default_options with Phpsafe.flow_sensitive = true }
        in
        ignore (Phpsafe.analyze_project ~opts:flow (p ()));
        Secflow.Budget.set
          { d with
            Secflow.Budget.fixpoint_passes = d.Secflow.Budget.fixpoint_passes + 1
          };
        let _, hits, misses =
          result_delta (fun () -> Phpsafe.analyze_project ~opts:flow (p ()))
        in
        Alcotest.(check int) "flow entries invalidated" 0 hits;
        Alcotest.(check bool) "analyzed afresh" true (misses > 0));
  ]

(* --budget-* invalidation is per analyzer: only the tools whose key covers
   the changed Budget slice may miss. *)
let budget_case =
  case "budget knobs invalidate only the analyzers that consult them" `Quick
    (fun () ->
      with_cache_dir @@ fun _dir ->
      let p = project "budget" [ vuln_file "a.php" ] in
      let d = Secflow.Budget.default in
      Fun.protect ~finally:Secflow.Budget.reset @@ fun () ->
      Secflow.Budget.set d;
      List.iter (fun (t : Secflow.Tool.t) -> ignore (t.Secflow.Tool.analyze_project p)) tools;
      let hits_for tool =
        let _, hits, _ =
          result_delta (fun () ->
              (tool : Secflow.Tool.t).Secflow.Tool.analyze_project p)
        in
        hits
      in
      (* fixpoint passes: Pixy's slice only *)
      Secflow.Budget.set
        { d with Secflow.Budget.fixpoint_passes = d.Secflow.Budget.fixpoint_passes + 1 };
      Alcotest.(check bool) "phpSAFE unaffected by fixpoint cap" true
        (hits_for Phpsafe.tool > 0);
      Alcotest.(check bool) "RIPS unaffected by fixpoint cap" true
        (hits_for Rips.tool > 0);
      Alcotest.(check int) "Pixy misses on fixpoint cap" 0 (hits_for Pixy.tool);
      (* include caps: phpSAFE's slice only *)
      Secflow.Budget.set
        { d with Secflow.Budget.include_depth = d.Secflow.Budget.include_depth + 1 };
      Alcotest.(check int) "phpSAFE misses on include cap" 0
        (hits_for Phpsafe.tool);
      Alcotest.(check bool) "RIPS unaffected by include cap" true
        (hits_for Rips.tool > 0);
      Alcotest.(check bool) "Pixy unaffected by include cap" true
        (hits_for Pixy.tool > 0))

(* ------------------------------------------------------------------ *)
(* Corruption safety                                                  *)
(* ------------------------------------------------------------------ *)

let rec walk_files path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc e -> walk_files (Filename.concat path e) acc)
      acc (Sys.readdir path)
  else path :: acc

let overwrite path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let corruption_cases =
  [
    case "corrupt and truncated entries are misses, never errors" `Quick
      (fun () ->
        with_cache_dir @@ fun dir ->
        let p = project "corrupt" [ vuln_file "a.php"; vuln_file "b.php" ] in
        let cold = Phpsafe.tool.Secflow.Tool.analyze_project p in
        let files = walk_files dir [] in
        Alcotest.(check bool) "cold run persisted entries" true (files <> []);
        List.iteri
          (fun i f -> overwrite f (if i mod 2 = 0 then "garbage" else ""))
          files;
        let rebuilt, hits, _ =
          result_delta (fun () -> Phpsafe.tool.Secflow.Tool.analyze_project p)
        in
        Alcotest.(check int) "nothing replays from garbage" 0 hits;
        Alcotest.check check_result "re-analysis reproduces cold results" cold
          rebuilt;
        let warm, warm_hits, _ =
          result_delta (fun () -> Phpsafe.tool.Secflow.Tool.analyze_project p)
        in
        Alcotest.check check_result "repopulated entries replay" cold warm;
        Alcotest.(check bool) "warm again after repopulation" true
          (warm_hits > 0));
    case "entries from another format version are misses" `Quick (fun () ->
        with_cache_dir @@ fun dir ->
        Store.put ~ns:"vtest" ~key:"k" [ 1; 2; 3 ];
        Alcotest.(check bool) "round-trips before tampering" true
          (Store.get ~ns:"vtest" ~key:"k" = Some [ 1; 2; 3 ]);
        let stamp = Printf.sprintf "phpsafe-store %d" Store.format_version in
        let next = Printf.sprintf "phpsafe-store %d" (Store.format_version + 1) in
        List.iter
          (fun f ->
            let ic = open_in_bin f in
            let len = in_channel_length ic in
            let body = really_input_string ic len in
            close_in ic;
            if String.length body >= String.length stamp
               && String.equal (String.sub body 0 (String.length stamp)) stamp
            then
              overwrite f
                (next
                ^ String.sub body (String.length stamp)
                    (String.length body - String.length stamp)))
          (walk_files dir []);
        Alcotest.(check bool) "future-version entry is a miss" true
          (Store.get ~ns:"vtest" ~key:"k" = (None : int list option)));
    case "v5 trees are invisible after the v6 format bump" `Quick (fun () ->
        (* format 6 switched structural digests to Marshal.No_sharing, so
           every digest-derived key changed; the version gate is what keeps
           v5 entries from ever being read back as v6 ones *)
        Alcotest.(check bool) "store format is at least 6" true
          (Store.format_version >= 6);
        with_cache_dir @@ fun dir ->
        Store.put ~ns:"vtest" ~key:"k" "current";
        let vdir v = Filename.concat dir (Printf.sprintf "v%d" v) in
        (* demote the freshly written tree to the previous format's dir,
           as if it had been left behind by an older binary *)
        Sys.rename (vdir Store.format_version)
          (vdir (Store.format_version - 1));
        Alcotest.(check bool) "previous-version tree is a miss" true
          (Store.get ~ns:"vtest" ~key:"k" = (None : string option));
        Store.put ~ns:"vtest" ~key:"k" "rewritten";
        Alcotest.(check bool) "repopulating alongside the stale tree works"
          true
          (Store.get ~ns:"vtest" ~key:"k" = Some "rewritten"));
  ]

(* ------------------------------------------------------------------ *)
(* Disk faults and fsck                                               *)
(* ------------------------------------------------------------------ *)

let write_errors_for ns =
  match
    List.find_opt
      (fun (s : Store.stats) -> String.equal s.Store.ns ns)
      (Store.counters ())
  with
  | Some s -> s.Store.write_errors
  | None -> 0

let with_fault_hook hook f =
  Store.set_fault_hook (Some hook);
  Fun.protect ~finally:(fun () -> Store.set_fault_hook None) f

let fault_cases =
  [
    case "a failing write degrades to a counted miss, not an error" `Quick
      (fun () ->
        with_cache_dir @@ fun _dir ->
        with_fault_hook
          (fun op _path ->
            if op = `Write then
              raise (Unix.Unix_error (Unix.ENOSPC, "write", "")))
          (fun () ->
            let before = write_errors_for "ftest" in
            (* put must swallow the fault... *)
            Store.put ~ns:"ftest" ~key:"k" [ 1; 2; 3 ];
            (* ...count it... *)
            Alcotest.(check int) "write_error counted" (before + 1)
              (write_errors_for "ftest");
            (* ...and leave the entry absent, i.e. a plain miss *)
            Alcotest.(check bool) "entry is a miss" true
              (Store.get ~ns:"ftest" ~key:"k" = (None : int list option)));
        (* hook cleared: the same put now lands and replays *)
        Store.put ~ns:"ftest" ~key:"k" [ 1; 2; 3 ];
        Alcotest.(check bool) "store works again" true
          (Store.get ~ns:"ftest" ~key:"k" = Some [ 1; 2; 3 ]));
    case "a failing read is a miss and the entry survives" `Quick (fun () ->
        with_cache_dir @@ fun _dir ->
        Store.put ~ns:"ftest" ~key:"k" 42;
        with_fault_hook
          (fun op _path ->
            if op = `Read then
              raise (Unix.Unix_error (Unix.EIO, "read", "")))
          (fun () ->
            Alcotest.(check bool) "faulted read is a miss" true
              (Store.get ~ns:"ftest" ~key:"k" = (None : int option)));
        Alcotest.(check bool) "entry intact after the fault" true
          (Store.get ~ns:"ftest" ~key:"k" = Some 42));
    case "fsck verifies good entries and quarantines corrupt ones" `Quick
      (fun () ->
        with_cache_dir @@ fun dir ->
        Store.put ~ns:"fsck" ~key:"good" [ 1 ];
        Store.put ~ns:"fsck" ~key:"bad" [ 2 ];
        let clean = Store.fsck () in
        Alcotest.(check int) "all scanned" 2 clean.Store.fk_scanned;
        Alcotest.(check int) "all ok" 2 clean.Store.fk_ok;
        Alcotest.(check int) "none quarantined" 0 clean.Store.fk_quarantined;
        (* corrupt exactly the entry whose payload mentions its key *)
        let corrupted = ref 0 in
        List.iter
          (fun f ->
            let ic = open_in_bin f in
            let len = in_channel_length ic in
            let body = really_input_string ic len in
            close_in ic;
            if !corrupted = 0 && String.length body > 4 then begin
              overwrite f (String.sub body 0 (String.length body - 1) ^ "!");
              incr corrupted
            end)
          (walk_files dir []);
        Alcotest.(check int) "one entry corrupted" 1 !corrupted;
        let dirty = Store.fsck () in
        Alcotest.(check int) "one quarantined" 1 dirty.Store.fk_quarantined;
        Alcotest.(check int) "one still ok" 1 dirty.Store.fk_ok;
        (* the corrupt entry moved into quarantine/ rather than vanishing *)
        let qdir = Filename.concat dir "quarantine" in
        Alcotest.(check bool) "quarantine dir populated" true
          (Sys.file_exists qdir
          && Array.length (Sys.readdir qdir) = 1);
        (* a second pass sees only the survivor: quarantine isn't rescanned *)
        let again = Store.fsck () in
        Alcotest.(check int) "rescan scans the survivor" 1
          again.Store.fk_scanned;
        Alcotest.(check int) "rescan quarantines nothing" 0
          again.Store.fk_quarantined);
    case "fsck on a disabled store reports all zeros" `Quick (fun () ->
        Store.set_root None;
        let r = Store.fsck () in
        Alcotest.(check int) "scanned" 0 r.Store.fk_scanned;
        Alcotest.(check int) "quarantined" 0 r.Store.fk_quarantined);
  ]

(* ------------------------------------------------------------------ *)
(* Pool-size transparency on a shared directory                       *)
(* ------------------------------------------------------------------ *)

let jobs_case =
  case "--jobs 1 and --jobs 4 agree on a shared cache directory" `Quick
    (fun () ->
      let projects =
        List.init 4 (fun i ->
            project
              (Printf.sprintf "plugin%d" i)
              [ vuln_file (Printf.sprintf "a%d.php" i);
                vuln_file (Printf.sprintf "b%d.php" i) ])
      in
      let items =
        List.concat_map
          (fun (t : Secflow.Tool.t) -> List.map (fun p -> (t, p)) projects)
          tools
      in
      let run pool =
        Sched.map ~pool
          (fun ((t : Secflow.Tool.t), p) -> t.Secflow.Tool.analyze_project p)
          items
      in
      (* cold at --jobs 4 (concurrent writers) vs cold at --jobs 1 *)
      let cold4 = with_cache_dir (fun _ -> run (Sched.create ~size:4 ())) in
      let cold1, warm4 =
        with_cache_dir (fun _ ->
            let c = run (Sched.create ~size:1 ()) in
            (c, run (Sched.create ~size:4 ())))
      in
      Alcotest.(check int) "all items analyzed" (List.length items)
        (List.length cold4);
      List.iteri
        (fun i ((c4, c1), w4) ->
          Alcotest.check check_result
            (Printf.sprintf "item %d: cold jobs 4 = cold jobs 1" i)
            c1 c4;
          Alcotest.check check_result
            (Printf.sprintf "item %d: warm jobs 4 = cold jobs 1" i)
            c1 w4)
        (List.combine (List.combine cold4 cold1) warm4))

(* ------------------------------------------------------------------ *)
(* Disk-tier accounting and tenancy (the serving daemon's ops surface) *)
(* ------------------------------------------------------------------ *)

let disk_cases =
  [
    case "stats reports per-namespace entries and bytes" `Quick (fun () ->
        with_cache_dir (fun _dir ->
            Store.put ~ns:"alpha" ~key:"k1" [ 1; 2; 3 ];
            Store.put ~ns:"alpha" ~key:"k2" [ 4 ];
            Store.put ~ns:"beta" ~key:"k1" "hello";
            let stats = Store.stats () in
            let find ns =
              List.find_opt
                (fun (s : Store.disk_stats) -> String.equal s.Store.ds_ns ns)
                stats
            in
            (match find "alpha" with
            | Some s ->
                Alcotest.(check int) "alpha entries" 2 s.Store.ds_entries;
                Alcotest.(check bool) "alpha bytes > 0" true
                  (s.Store.ds_bytes > 0)
            | None -> Alcotest.fail "no alpha namespace in stats");
            match find "beta" with
            | Some s -> Alcotest.(check int) "beta entries" 1 s.Store.ds_entries
            | None -> Alcotest.fail "no beta namespace in stats"));
    case "stats is empty when the store is disabled" `Quick (fun () ->
        Store.set_root None;
        Alcotest.(check int) "no namespaces" 0 (List.length (Store.stats ())));
    case "prune removes only entries older than the cutoff" `Quick (fun () ->
        with_cache_dir (fun dir ->
            Store.put ~ns:"old" ~key:"k" [ 1 ];
            Store.put ~ns:"new" ~key:"k" [ 2 ];
            (* backdate every file under old/'s namespace directory *)
            let rec backdate path =
              if Sys.is_directory path then
                Array.iter
                  (fun e -> backdate (Filename.concat path e))
                  (Sys.readdir path)
              else Unix.utimes path 1000. 1000.
            in
            let vdir =
              Filename.concat dir
                (Printf.sprintf "v%d" Store.format_version)
            in
            backdate (Filename.concat vdir "old");
            let removed = Store.prune ~max_age_s:3600. () in
            Alcotest.(check int) "one entry pruned" 1 removed;
            Alcotest.(check bool) "old entry is now a miss" true
              (Store.get ~ns:"old" ~key:"k" = (None : int list option));
            Alcotest.(check bool) "fresh entry survives" true
              (Store.get ~ns:"new" ~key:"k" = Some [ 2 ])));
    case "tenants never share cache entries" `Quick (fun () ->
        with_cache_dir (fun _dir ->
            Store.with_tenant (Some "acme") (fun () ->
                Store.put ~ns:"t" ~key:"k" "acme-value");
            Store.with_tenant (Some "globex") (fun () ->
                Alcotest.(check bool) "other tenant misses" true
                  (Store.get ~ns:"t" ~key:"k" = (None : string option)));
            Alcotest.(check bool) "no-tenant misses" true
              (Store.get ~ns:"t" ~key:"k" = (None : string option));
            Store.with_tenant (Some "acme") (fun () ->
                Alcotest.(check bool) "same tenant hits" true
                  (Store.get ~ns:"t" ~key:"k" = Some "acme-value"));
            (* tenants surface as "tenant/ns" in the disk stats *)
            Alcotest.(check bool) "stats shows acme/t" true
              (List.exists
                 (fun (s : Store.disk_stats) ->
                   String.equal s.Store.ds_ns "acme/t")
                 (Store.stats ()))));
    case "invalid tenant names are rejected" `Quick (fun () ->
        List.iter
          (fun bad ->
            match Store.with_tenant (Some bad) (fun () -> ()) with
            | () -> Alcotest.fail ("accepted invalid tenant: " ^ bad)
            | exception Invalid_argument _ -> ())
          [ ""; "."; ".."; "a/b"; "a b"; "a\nb" ]);
  ]

let () =
  Alcotest.run "cache"
    [ ("warm replay", replay_cases);
      ("exact invalidation",
       (edited_file_case :: edited_callee_case :: opts_cases) @ [ budget_case ]);
      ("corruption safety", corruption_cases);
      ("disk faults and fsck", fault_cases);
      ("pool transparency", [ jobs_case ]);
      ("disk accounting and tenancy", disk_cases) ]
