(** phpSAFE analyzer behaviour tests, organised by the paper's §III.C token
    rules, §III.E OOP support, function summaries, includes and the memory
    budget. *)

open Secflow

let analyze src = Phpsafe.analyze_source ~file:"t.php" ("<?php\n" ^ src)

let findings src =
  (analyze src).Report.findings
  |> List.map (fun (f : Report.finding) ->
         (f.Report.kind, f.Report.sink_pos.Phplang.Ast.line))

(* line numbers below are 1-based on [src], i.e. after the injected tag *)
let expect name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let got =
        findings src
        |> List.map (fun (k, l) -> Printf.sprintf "%s@%d" (Vuln.kind_to_string k) (l - 1))
        |> List.sort compare
      in
      Alcotest.(check (list string)) name (List.sort compare expected) got)

let flow_cases =
  [
    expect "direct superglobal echo" "echo $_GET['x'];" [ "XSS@1" ];
    expect "assignment propagates" "$a = $_GET['x'];\necho $a;" [ "XSS@2" ];
    expect "copy chains propagate" "$a = $_POST['x'];\n$b = $a;\n$c = $b;\necho $c;"
      [ "XSS@4" ];
    expect "concat keeps taint" "$a = 'x' . $_GET['y'] . 'z';\necho $a;" [ "XSS@2" ];
    expect "concat-assign keeps taint" "$a = 'x';\n$a .= $_GET['y'];\necho $a;"
      [ "XSS@3" ];
    expect "arithmetic scrubs" "$a = $_GET['x'] + 1;\necho $a;" [];
    expect "comparison scrubs" "$a = $_GET['x'] == 'y';\necho $a;" [];
    expect "int cast scrubs" "$a = (int) $_GET['x'];\necho $a;" [];
    expect "string cast keeps" "$a = (string) $_GET['x'];\necho $a;" [ "XSS@2" ];
    expect "interpolation carries taint" "$x = $_GET['q'];\necho \"<div>$x</div>\";"
      [ "XSS@2" ];
    expect "ternary joins branches" "$a = $_GET['f'] ? $_GET['v'] : 'd';\necho $a;"
      [ "XSS@2" ];
    expect "isset guard form still tainted"
      "$a = isset($_GET['v']) ? $_GET['v'] : '';\necho $a;" [ "XSS@2" ];
    expect "array element taints whole array"
      "$a = array();\n$a['k'] = $_GET['x'];\necho $a['other'];" [ "XSS@3" ];
    expect "array literal with tainted item"
      "$a = array('k' => $_GET['x']);\necho $a['k'];" [ "XSS@2" ];
    expect "list assignment" "list($a, $b) = array($_GET['x'], 1);\necho $b;"
      [ "XSS@2" ];
    expect "unset clears taint (T_UNSET rule)"
      "$a = $_GET['x'];\nunset($a);\necho $a;" [];
    expect "foreach taints bound variable"
      "$rows = array($_GET['x']);\nforeach ($rows as $r) {\necho $r;\n}"
      [ "XSS@3" ];
    expect "foreach key-value" "$rows = array($_POST['x']);\nforeach ($rows as $k => $v) {\necho $v;\n}"
      [ "XSS@3" ];
    expect "loops do not change data flow (while)"
      "$a = $_GET['x'];\nwhile ($i < 3) {\necho $a;\n$i++;\n}" [ "XSS@3" ];
    expect "echo of multiple args reports each"
      "echo $_GET['a'], $_GET['b'];" [ "XSS@1" ];
    (* same sink line: de-duplicated by (kind, file, line) *)
    expect "print expression is a sink" "print $_GET['x'];" [ "XSS@1" ];
    expect "exit message is a sink" "exit($_GET['x']);" [ "XSS@1" ];
    expect "printf is a sink" "printf('%s', $_COOKIE['x']);" [ "XSS@1" ];
    expect "sequential branch execution (paper semantics)"
      "if ($c) {\n$a = $_GET['x'];\n} else {\n$a = 'safe';\n}\necho $a;" [];
    expect "taint survives if no later overwrite"
      "if ($c) {\n$a = $_GET['x'];\necho $a;\n}" [ "XSS@3" ];
  ]

let sanitizer_cases =
  [
    expect "htmlspecialchars cleans XSS" "echo htmlspecialchars($_GET['x']);" [];
    expect "esc_html (WordPress) cleans XSS" "echo esc_html($_GET['x']);" [];
    expect "intval cleans both" "$a = intval($_GET['x']);\necho $a;\n$wpdb->query(\"q $a\");" [];
    expect "sanitizer does not clean other kind"
      "$a = htmlspecialchars($_GET['x']);\n$wpdb->query(\"SELECT $a\");"
      [ "SQLi@2" ];
    expect "revert reinstates taint"
      "$a = htmlspecialchars($_GET['x']);\n$b = stripslashes($a);\necho $b;"
      [ "XSS@3" ];
    expect "revert without prior sanitization keeps taint"
      "$a = stripslashes($_GET['x']);\necho $a;" [ "XSS@2" ];
    expect "passthrough builtin keeps taint" "echo trim($_GET['x']);" [ "XSS@1" ];
    expect "sprintf joins all args" "echo sprintf('%s-%s', 'a', $_GET['x']);"
      [ "XSS@1" ];
    expect "unknown function returns untainted"
      "$a = some_unknown_fn($_GET['x']);\necho $a;" [];
    expect "guard trap is reported (path-insensitive)"
      "$n = $_GET['n'];\nif (!is_numeric($n)) { exit; }\necho $n;" [ "XSS@3" ];
  ]

let interproc_cases =
  [
    expect "taint through parameter into sink"
      "function f($m) {\necho $m;\n}\nf($_GET['x']);" [ "XSS@2" ];
    expect "clean call does not fire the sink"
      "function f($m) {\necho $m;\n}\nf('hello');" [];
    expect "taint through return value"
      "function f($m) {\nreturn '<b>' . $m;\n}\necho f($_POST['x']);" [ "XSS@4" ];
    expect "function sanitizing its argument"
      "function f($m) {\nreturn htmlspecialchars($m);\n}\necho f($_GET['x']);" [];
    expect "source inside callee reaches caller sink"
      "function f() {\nreturn $_GET['x'];\n}\necho f();" [ "XSS@4" ];
    expect "two-level call chain"
      "function inner($a) {\nreturn $a;\n}\nfunction outer($b) {\nreturn inner($b);\n}\necho outer($_GET['x']);"
      [ "XSS@7" ];
    expect "nested conditional sink (hoisting)"
      "function show($t) {\necho $t;\n}\nfunction relay($u) {\nshow($u);\n}\nrelay($_GET['x']);"
      [ "XSS@2" ];
    expect "recursion terminates without findings"
      "function f($a) {\nreturn f($a);\n}\necho f($_GET['x']);" [];
    expect "recursion with internal sink"
      "function f($a) {\necho $a;\nreturn f($a);\n}\nf($_GET['x']);" [ "XSS@2" ];
    expect "uncalled function analyzed as entry point"
      "function hook() {\necho $_COOKIE['c'];\n}" [ "XSS@2" ];
    expect "uncalled function params are untainted"
      "function hook($arg) {\necho $arg;\n}" [];
    expect "closure body analyzed"
      "$cb = function() {\necho $_GET['x'];\n};" [ "XSS@2" ];
    expect "closure captures current taint"
      "$t = $_GET['x'];\n$cb = function() use ($t) {\necho $t;\n};" [ "XSS@3" ];
    expect "static variable initialization"
      "function f() {\nstatic $s = 'x';\necho $s;\n}\nf();" [];
    expect "global declaration shares state"
      "$g = $_GET['x'];\nfunction f() {\nglobal $g;\necho $g;\n}\nf();" [ "XSS@4" ];
  ]

let oop_cases =
  [
    expect "wpdb get_results is an XSS source (paper §III.E)"
      "$rows = $wpdb->get_results('SELECT * FROM sml');\nforeach ($rows as $row) {\necho $row->sml_name;\n}"
      [ "XSS@3" ];
    expect "wpdb get_var source" "$v = $wpdb->get_var('SELECT x');\necho $v;"
      [ "XSS@2" ];
    expect "wpdb query is a SQLi sink"
      "$id = $_GET['id'];\n$wpdb->query(\"DELETE WHERE id = $id\");" [ "SQLi@2" ];
    expect "wpdb get_results also a SQLi sink"
      "$q = $_POST['q'];\n$wpdb->get_results(\"SELECT $q\");"
      [ "SQLi@2" ];
    expect "wpdb prepare sanitizes SQLi"
      "$wpdb->query($wpdb->prepare('SELECT %s', $_GET['x']));" [];
    expect "method of user class with internal source"
      "class W {\npublic function render() {\necho $_GET['f'];\n}\n}" [ "XSS@3" ];
    expect "taint through method parameter"
      "class W {\npublic function show($t) {\necho $t;\n}\n}\n$w = new W();\n$w->show($_GET['x']);"
      [ "XSS@3" ];
    expect "property store and echo across methods (§III.E full names)"
      "class F {\npublic $d;\npublic function capture() {\n$this->d = $_GET['x'];\n}\npublic function display() {\necho $this->d;\n}\n}"
      [ "XSS@7" ];
    expect "static method call"
      "class S {\npublic static function go($t) {\necho $t;\n}\n}\nS::go($_POST['x']);"
      [ "XSS@3" ];
    expect "static property flow"
      "class C {\npublic static $v;\n}\nC::$v = $_GET['x'];\necho C::$v;" [ "XSS@5" ];
    expect "inherited method resolution"
      "class Base {\npublic function emit($t) {\necho $t;\n}\n}\nclass Child extends Base {\n}\n$c = new Child();\n$c->emit($_GET['x']);"
      [ "XSS@3" ];
    expect "constructor analyzed on new"
      "class K {\npublic function __construct($t) {\necho $t;\n}\n}\nnew K($_GET['x']);"
      [ "XSS@3" ];
    expect "object row property inherits object taint"
      "$row = $wpdb->get_row('SELECT 1');\necho $row->title;" [ "XSS@2" ];
    expect "class binding copied through assignment"
      "class W {\npublic function show($t) {\necho $t;\n}\n}\n$a = new W();\n$b = $a;\n$b->show($_GET['x']);"
      [ "XSS@3" ];
    expect "unknown method returns untainted"
      "$v = $mailer->fetch_subject();\necho $v;" [];
  ]

let project_cases =
  [
    Alcotest.test_case "include resolves across files" `Quick (fun () ->
        let project =
          Phplang.Project.make ~name:"p"
            [ { Phplang.Project.path = "main.php";
                source = "<?php\n$t = $_GET['x'];\ninclude 'view.php';\n" };
              { Phplang.Project.path = "view.php";
                source = "<?php\necho $t;\n" } ]
        in
        let r = Phpsafe.analyze_project project in
        Alcotest.(check int) "one finding" 1 (List.length r.Report.findings);
        let f = List.hd r.Report.findings in
        Alcotest.(check string) "in view.php" "view.php"
          f.Report.sink_pos.Phplang.Ast.file);
    Alcotest.test_case "missing include is skipped" `Quick (fun () ->
        let r =
          Phpsafe.analyze_source ~file:"t.php"
            "<?php include 'wp-load.php'; echo $_GET['x'];"
        in
        Alcotest.(check int) "finding survives" 1 (List.length r.Report.findings));
    Alcotest.test_case "include cycles terminate" `Quick (fun () ->
        let project =
          Phplang.Project.make ~name:"p"
            [ { Phplang.Project.path = "a.php";
                source = "<?php include 'b.php'; echo $_GET['a'];" };
              { Phplang.Project.path = "b.php";
                source = "<?php include 'a.php'; echo $_GET['b'];" } ]
        in
        let r = Phpsafe.analyze_project project in
        Alcotest.(check bool) "completes with findings" true
          (List.length r.Report.findings >= 2));
    Alcotest.test_case "deep include chain exhausts the memory budget" `Quick
      (fun () ->
        let chain n =
          List.init n (fun i ->
              let next =
                if i + 1 < n then
                  Printf.sprintf "<?php include 'c%d.php';" (i + 1)
                else "<?php $x = 1;"
              in
              { Phplang.Project.path = Printf.sprintf "c%d.php" i; source = next })
        in
        let files =
          { Phplang.Project.path = "main.php";
            source = "<?php include 'c0.php'; echo $_GET['x'];" }
          :: chain 7
        in
        let r = Phpsafe.analyze_project (Phplang.Project.make ~name:"p" files) in
        let failed = Report.failed_files r in
        Alcotest.(check (list string)) "only main fails" [ "main.php" ] failed;
        (* the vulnerability in the failed file is missed *)
        Alcotest.(check int) "no findings" 0 (List.length r.Report.findings));
    Alcotest.test_case "budget can be disabled" `Quick (fun () ->
        let files =
          [ { Phplang.Project.path = "main.php";
              source = "<?php include 'c0.php'; echo $_GET['x'];" } ]
          @ List.init 8 (fun i ->
                let next =
                  if i < 7 then Printf.sprintf "<?php include 'c%d.php';" (i + 1)
                  else "<?php $y = 1;"
                in
                { Phplang.Project.path = Printf.sprintf "c%d.php" i; source = next })
        in
        let opts = { Phpsafe.default_options with Phpsafe.budget = None } in
        let r =
          Phpsafe.analyze_project ~opts (Phplang.Project.make ~name:"p" files)
        in
        Alcotest.(check int) "no failed files" 0
          (List.length (Report.failed_files r));
        Alcotest.(check int) "finding recovered" 1 (List.length r.Report.findings));
    Alcotest.test_case "parse failure recorded" `Quick (fun () ->
        let r = Phpsafe.analyze_source ~file:"bad.php" "<?php $a = ;" in
        Alcotest.(check int) "failed" 1 (List.length (Report.failed_files r)));
    Alcotest.test_case "findings carry trace back to the source" `Quick
      (fun () ->
        let r =
          Phpsafe.analyze_source ~file:"t.php"
            "<?php\n$a = $_GET['x'];\n$b = $a;\necho $b;"
        in
        match r.Report.findings with
        | [ f ] ->
            Alcotest.(check bool) "trace non-empty" true (f.Report.trace <> []);
            let first = List.hd f.Report.trace in
            Alcotest.(check string) "starts at the source" "$_GET"
              first.Report.step_var
        | _ -> Alcotest.fail "expected exactly one finding");
    Alcotest.test_case "duplicate sink reported once" `Quick (fun () ->
        let r =
          Phpsafe.analyze_source ~file:"t.php"
            "<?php\nfunction f($a) {\necho $a;\n}\nf($_GET['x']);\nf($_GET['y']);"
        in
        Alcotest.(check int) "one deduplicated finding" 1
          (List.length r.Report.findings));
    Alcotest.test_case "two distinct sinks on one line both reported" `Quick
      (fun () ->
        (* regression: dedup used to key findings by (kind, file, line)
           only, collapsing echo $a and echo $b into one finding *)
        let r =
          Phpsafe.analyze_source ~file:"t.php"
            "<?php\n$a = $_GET['a'];\n$b = $_GET['b'];\necho $a; echo $b;"
        in
        let vars =
          List.map (fun (f : Report.finding) -> f.Report.variable)
            r.Report.findings
          |> List.sort compare
        in
        Alcotest.(check (list string)) "both variables" [ "$a"; "$b" ] vars);
    Alcotest.test_case "identical sink occurrence still deduplicated" `Quick
      (fun () ->
        let r =
          Phpsafe.analyze_source ~file:"t.php"
            "<?php\nfunction f($a) {\necho $a;\n}\nf($_GET['x']);\nf($_GET['y']);"
        in
        Alcotest.(check int) "still one finding" 1
          (List.length r.Report.findings));
  ]

(* -- analyzer option flags (ablation switches) ----------------------- *)

let analyze_with opts src =
  Phpsafe.analyze_source ~opts ~file:"t.php" ("<?php\n" ^ src)

let reference_cases =
  [
    expect "write through a reference taints the other name"
      "$a = 'safe';\n$b =& $a;\n$b = $_GET['x'];\necho $a;" [ "XSS@4" ];
    expect "reference to an already-tainted variable"
      "$a = $_GET['x'];\n$b =& $a;\necho $b;" [ "XSS@3" ];
    expect "sanitizing through one alias cleans the cell"
      "$a = $_GET['x'];\n$b =& $a;\n$b = htmlspecialchars($b);\necho $a;" [];
    expect "unset breaks only the unset name"
      "$a = $_GET['x'];\n$b =& $a;\nunset($b);\necho $a;" [ "XSS@4" ];
    expect "alias chains resolve transitively"
      "$a = 'safe';\n$b =& $a;\n$c =& $b;\n$c = $_GET['x'];\necho $a;"
      [ "XSS@5" ];
  ]

let option_cases =
  [
    Alcotest.test_case "analyze_uncalled=false skips hook functions" `Quick
      (fun () ->
        let opts = { Phpsafe.default_options with Phpsafe.analyze_uncalled = false } in
        let r = analyze_with opts "function hook() {\necho $_GET['x'];\n}" in
        Alcotest.(check int) "no findings" 0 (List.length r.Report.findings);
        (* called code is unaffected *)
        let r2 = analyze_with opts "echo $_GET['x'];" in
        Alcotest.(check int) "top-level still found" 1
          (List.length r2.Report.findings));
    Alcotest.test_case "resolve_includes=false loses local-scope include flows"
      `Quick (fun () ->
        (* a template include inside a function sees the function's locals;
           without resolution that flow is gone (top-level flows survive via
           the shared global state, which models WordPress loading every
           plugin file into one runtime) *)
        let project =
          Phplang.Project.make ~name:"p"
            [ { Phplang.Project.path = "main.php";
                source =
                  "<?php function render() { $t = $_GET['x']; include 'view.php'; } render();" };
              { Phplang.Project.path = "view.php"; source = "<?php echo $t;" } ]
        in
        let with_inc = Phpsafe.analyze_project project in
        Alcotest.(check int) "found with resolution" 1
          (List.length with_inc.Report.findings);
        let opts = { Phpsafe.default_options with Phpsafe.resolve_includes = false } in
        let without = Phpsafe.analyze_project ~opts project in
        Alcotest.(check int) "lost without resolution" 0
          (List.length without.Report.findings));
    Alcotest.test_case "resolve_includes=false disables the memory budget"
      `Quick (fun () ->
        let opts = { Phpsafe.default_options with Phpsafe.resolve_includes = false } in
        let files =
          { Phplang.Project.path = "main.php";
            source = "<?php include 'c0.php'; echo $_GET['x'];" }
          :: List.init 8 (fun i ->
                 let next =
                   if i < 7 then Printf.sprintf "<?php include 'c%d.php';" (i + 1)
                   else "<?php $y = 1;"
                 in
                 { Phplang.Project.path = Printf.sprintf "c%d.php" i; source = next })
        in
        let r = Phpsafe.analyze_project ~opts (Phplang.Project.make ~name:"p" files) in
        Alcotest.(check int) "no failures" 0 (List.length (Report.failed_files r));
        Alcotest.(check int) "finding recovered" 1 (List.length r.Report.findings));
    Alcotest.test_case "respect_guards removes the numeric-guard FP" `Quick
      (fun () ->
        let opts = { Phpsafe.default_options with Phpsafe.respect_guards = true } in
        let src = "$n = $_GET['n'];\nif (!is_numeric($n)) { exit; }\necho $n;" in
        let r = analyze_with opts src in
        Alcotest.(check int) "guarded echo is clean" 0
          (List.length r.Report.findings);
        (* and the default stays path-insensitive like the paper's tool *)
        let r2 = analyze_with Phpsafe.default_options src in
        Alcotest.(check int) "default still flags it" 1
          (List.length r2.Report.findings));
    Alcotest.test_case "respect_guards needs a terminating branch" `Quick
      (fun () ->
        let opts = { Phpsafe.default_options with Phpsafe.respect_guards = true } in
        let r =
          analyze_with opts
            "$n = $_GET['n'];\nif (!is_numeric($n)) { $n = $n . '!'; }\necho $n;"
        in
        Alcotest.(check int) "non-terminating branch keeps taint" 1
          (List.length r.Report.findings));
    Alcotest.test_case "respect_guards ignores unknown guards" `Quick (fun () ->
        let opts = { Phpsafe.default_options with Phpsafe.respect_guards = true } in
        let r =
          analyze_with opts
            "$n = $_GET['n'];\nif (!my_check($n)) { exit; }\necho $n;"
        in
        Alcotest.(check int) "unknown guard keeps taint" 1
          (List.length r.Report.findings));
    Alcotest.test_case "generic config loses WordPress detections" `Quick
      (fun () ->
        let opts =
          { Phpsafe.default_options with Phpsafe.config = Phpsafe.Config.generic_php }
        in
        let r =
          analyze_with opts
            "$v = $wpdb->get_var('SELECT x');\necho $v;\necho esc_html($_GET['q']);"
        in
        (* loses the $wpdb source, and esc_html is unknown (returns clean) *)
        Alcotest.(check int) "no findings" 0 (List.length r.Report.findings));
  ]

(* -- sink-context-sensitive sanitization (--contexts) ---------------- *)

let ctx_opts = { Phpsafe.default_options with Phpsafe.infer_contexts = true }

let expect_with opts name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let got =
        (analyze_with opts src).Report.findings
        |> List.map (fun (f : Report.finding) ->
               Printf.sprintf "%s@%d" (Vuln.kind_to_string f.Report.kind)
                 (f.Report.sink_pos.Phplang.Ast.line - 1))
        |> List.sort compare
      in
      Alcotest.(check (list string)) name (List.sort compare expected) got)

let expect_ctx name src expected = expect_with ctx_opts name src expected

let context_cases =
  [
    (* context mismatches the flat model accepts as sanitized *)
    expect_ctx "htmlspecialchars inadequate in unquoted attribute"
      "$a = htmlspecialchars($_GET['x']);\necho \"<input value=\" . $a . \">\";"
      [ "XSS@2" ];
    expect_with Phpsafe.default_options
      "flat model accepts the unquoted attribute"
      "$a = htmlspecialchars($_GET['x']);\necho \"<input value=\" . $a . \">\";"
      [];
    expect_ctx "htmlspecialchars inadequate in a script string"
      "echo \"<script>var q = '\" . htmlspecialchars($_GET['q']) . \"';</script>\";"
      [ "XSS@1" ];
    expect_ctx "addslashes inadequate in a numeric SQL position"
      "$id = addslashes($_GET['id']);\nmysql_query(\"UPDATE t SET f = 1 WHERE id = \" . $id);"
      [ "SQLi@2" ];
    (* adequate sanitizers stay accepted *)
    expect_ctx "htmlspecialchars adequate in the body"
      "echo '<p>' . htmlspecialchars($_GET['x']) . '</p>';" [];
    expect_ctx "htmlspecialchars adequate in a quoted attribute"
      "echo '<input value=\"' . htmlspecialchars($_GET['x']) . '\">';" [];
    expect_ctx "addslashes adequate in a quoted SQL string"
      "mysql_query(\"SELECT * FROM t WHERE name = '\" . addslashes($_GET['n']) . \"'\");"
      [];
    expect_ctx "intval adequate everywhere"
      "echo \"<input value=\" . intval($_GET['x']) . \">\";" [];
    expect_ctx "unsanitized sink still reported with a context"
      "echo \"<input value=\" . $_GET['x'] . \">\";" [ "XSS@1" ];
    (* revert exactness: stripslashes clears only the slash escapers *)
    expect_ctx "stripslashes does not undo htmlspecialchars"
      "$a = htmlspecialchars($_GET['x']);\n$a = stripslashes($a);\necho '<p>' . $a . '</p>';"
      [];
    expect_with Phpsafe.default_options "flat revert model still flags it"
      "$a = htmlspecialchars($_GET['x']);\n$a = stripslashes($a);\necho '<p>' . $a . '</p>';"
      [ "XSS@3" ];
    expect_ctx "stripslashes does undo addslashes"
      "$a = addslashes($_GET['n']);\n$a = stripslashes($a);\nmysql_query(\"SELECT * FROM t WHERE name = '\" . $a . \"'\");"
      [ "SQLi@3" ];
    (* sanitizer sets compose across function-summary boundaries *)
    expect_ctx "callee-applied sanitizer survives a caller stripslashes"
      "function enc_v($v) { return htmlspecialchars($v); }\n$a = enc_v($_GET['x']);\n$a = stripslashes($a);\necho '<p>' . $a . '</p>';"
      [];
    expect_ctx "callee-applied addslashes undone by caller stripslashes"
      "function esc_v($v) { return addslashes($v); }\n$q = esc_v($_POST['n']);\n$q = stripslashes($q);\nmysql_query(\"SELECT * FROM t WHERE name = '\" . $q . \"'\");"
      [ "SQLi@4" ];
    expect_ctx "conditional sink fires on context mismatch"
      "function show_v($v) {\necho \"<input value=\" . $v . \">\";\n}\nshow_v(htmlspecialchars($_GET['x']));"
      [ "XSS@2" ];
    expect_ctx "conditional sink suppressed when adequate"
      "function put_v($v) {\necho '<p>' . $v . '</p>';\n}\nput_v(htmlspecialchars($_GET['x']));"
      [];
    Alcotest.test_case "finding carries context and sanitizer set" `Quick
      (fun () ->
        let r =
          analyze_with ctx_opts
            "$a = htmlspecialchars($_GET['x']);\necho \"<input value=\" . $a . \">\";"
        in
        match r.Report.findings with
        | [ f ] ->
            Alcotest.(check (option string)) "context"
              (Some "html-attr-unquoted")
              (Option.map Context.to_string f.Report.context);
            Alcotest.(check (list string)) "sanitizers"
              [ "htmlspecialchars" ] f.Report.sanitizers_applied
        | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs));
    Alcotest.test_case "flat mode leaves the new fields empty" `Quick
      (fun () ->
        let r = analyze "echo $_GET['x'];" in
        match r.Report.findings with
        | [ f ] ->
            Alcotest.(check bool) "no context" true (f.Report.context = None);
            Alcotest.(check (list string)) "no sanitizers" []
              f.Report.sanitizers_applied
        | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs));
  ]

(* heredoc/nowdoc, <?= and ?? reaching the taint engine end to end *)
let frontend_cases =
  [
    expect "heredoc interpolation reaches a SQL sink"
      "$id = $_GET['id'];\n$q = <<<SQL\nSELECT $id\nSQL;\nmysql_query($q);"
      [ "SQLi@5" ];
    expect "nowdoc body stays a literal"
      "$id = $_GET['id'];\n$q = <<<'SQL'\nSELECT $id\nSQL;\nmysql_query($q);"
      [];
    expect "short echo tag is an XSS sink" "?>\n<?= $_GET['x'] ?>" [ "XSS@2" ];
    expect "?? carries taint from its left operand"
      "$a = $_GET['x'] ?? 'd';\necho $a;" [ "XSS@2" ];
    expect "?? carries taint from its right operand"
      "$a = 'd' ?? $_GET['x'];\necho $a;" [ "XSS@2" ];
    expect "?? of two literals is clean" "$a = 'x' ?? 'y';\necho $a;" [];
  ]

let analyze_flow src =
  let opts = { Phpsafe.default_options with Phpsafe.flow_sensitive = true } in
  Phpsafe.analyze_source ~opts ~file:"t.php" ("<?php\n" ^ src)

let expect_flow name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let got =
        (analyze_flow src).Report.findings
        |> List.map (fun (f : Report.finding) ->
               Printf.sprintf "%s@%d"
                 (Vuln.kind_to_string f.Report.kind)
                 (f.Report.sink_pos.Phplang.Ast.line - 1))
        |> List.sort compare
      in
      Alcotest.(check (list string)) name (List.sort compare expected) got)

(* --flow: the fixpoint walk over the shared CFG; contrast each case with
   its flat counterpart in [flow_cases] *)
let flow_sensitive_cases =
  [
    expect_flow "branch join keeps taint the flat walk overwrites"
      "if ($c) {\n$a = $_GET['x'];\n} else {\n$a = 'safe';\n}\necho $a;"
      [ "XSS@6" ];
    expect_flow "sanitizing in one branch does not cover the other"
      "if ($c) {\n$a = $_GET['x'];\n} else {\n$a = htmlspecialchars($_GET['x']);\n}\necho $a;"
      [ "XSS@6" ];
    expect_flow "loop back-edge re-generates taint at an earlier sink"
      "$w = 'ready';\nwhile ($i < 3) {\necho $w;\n$w = $_GET['x'];\n$i++;\n}"
      [ "XSS@3" ];
    expect_flow "tainted overwrite in an exiting branch never reaches the sink"
      "$x = htmlspecialchars($_GET['a']);\nif ($c) {\n$x = $_GET['a'];\nexit;\n}\necho $x;"
      [];
    expect_flow "sanitized value stays clean under --flow"
      "$x = htmlspecialchars($_GET['a']);\necho $x;" [];
    expect_flow "straight-line taint unchanged under --flow"
      "$a = $_GET['x'];\necho $a;" [ "XSS@2" ];
    expect_flow "sequential overwrite still kills taint"
      "$a = $_GET['x'];\n$a = 'safe';\necho $a;" [];
  ]

let () =
  Alcotest.run "phpsafe"
    [ ("data flow (§III.C)", flow_cases);
      ("front-end gaps (heredoc, <?=, ??)", frontend_cases);
      ("flow-sensitive walk (--flow)", flow_sensitive_cases);
      ("sanitizers and reverts (§III.A)", sanitizer_cases);
      ("inter-procedural and summaries", interproc_cases);
      ("OOP support (§III.E)", oop_cases);
      ("projects, includes, budget", project_cases);
      ("references (=& aliasing)", reference_cases);
      ("option flags (ablation switches)", option_cases);
      ("sink contexts (--contexts)", context_cases) ]
