(** Scheduler and parse-cache tests: the parallel evaluation driver must
    reproduce the sequential results exactly (the determinism guarantee the
    tables rely on), and the shared content-keyed parse cache must be
    transparent — identical results with it on or off, each distinct file
    parsed exactly once per run, the other tools hitting the cache. *)

module Cache = Phplang.Project.Parse_cache

(* Everything but the timing fields, which legitimately differ run to run. *)
let normalize (ev : Evalkit.Runner.evaluation) =
  ( ev.Evalkit.Runner.ev_version,
    List.map
      (fun (r : Evalkit.Runner.tool_run) -> r.Evalkit.Runner.tr_output)
      ev.Evalkit.Runner.ev_runs,
    ev.Evalkit.Runner.ev_classified,
    ev.Evalkit.Runner.ev_union )

let case = Alcotest.test_case

let map_cases =
  [
    case "map preserves input order" `Quick (fun () ->
        let pool = Sched.create ~size:4 () in
        let items = List.init 100 Fun.id in
        Alcotest.(check (list int)) "squares in order"
          (List.map (fun i -> i * i) items)
          (Sched.map ~pool (fun i -> i * i) items));
    case "map on empty and singleton lists" `Quick (fun () ->
        let pool = Sched.create ~size:4 () in
        Alcotest.(check (list int)) "empty" [] (Sched.map ~pool succ []);
        Alcotest.(check (list int)) "singleton" [ 2 ] (Sched.map ~pool succ [ 1 ]));
    case "exceptions propagate from workers" `Quick (fun () ->
        let pool = Sched.create ~size:4 () in
        Alcotest.check_raises "first failure re-raised" Exit (fun () ->
            ignore
              (Sched.map ~pool
                 (fun i -> if i = 7 then raise Exit else i)
                 (List.init 20 Fun.id))));
    case "size clamps to at least one" `Quick (fun () ->
        Alcotest.(check int) "size 0 clamps" 1 (Sched.size (Sched.create ~size:0 ()));
        Alcotest.(check bool) "default is >= 1" true
          (Sched.size (Sched.create ()) >= 1));
    case "chunked dispatch preserves order at every chunk size" `Quick
      (fun () ->
        let pool = Sched.create ~size:4 () in
        let items = List.init 103 Fun.id in
        let expect = List.map (fun i -> i * 3) items in
        List.iter
          (fun chunk ->
            Alcotest.(check (list int))
              (Printf.sprintf "chunk=%d" chunk)
              expect
              (Sched.map ~chunk ~pool (fun i -> i * 3) items))
          [ 1; 2; 7; 50; 103; 1000 ]);
    case "chunked dispatch isolates crashes at their index" `Quick (fun () ->
        let pool = Sched.create ~size:3 () in
        let results =
          Sched.map_result ~chunk:5 ~pool
            (fun i -> if i = 13 then raise Exit else i)
            (List.init 40 Fun.id)
        in
        List.iteri
          (fun i r ->
            match r with
            | Sched.Done v when i <> 13 -> Alcotest.(check int) "in order" i v
            | Sched.Crashed (Exit, _) when i = 13 -> ()
            | _ -> Alcotest.failf "unexpected result at %d" i)
          results);
  ]

(* Per-item crash isolation in [map_result]: a raising item yields [Error]
   in its input position while every other item still computes. *)
let map_result_cases =
  [
    case "one poisoned item doesn't abort the rest" `Quick (fun () ->
        let pool = Sched.create ~size:4 () in
        let results =
          Sched.map_result ~pool
            (fun i -> if i mod 10 = 7 then failwith "poison" else i * i)
            (List.init 50 Fun.id)
        in
        Alcotest.(check int) "one result per item" 50 (List.length results);
        List.iteri
          (fun i r ->
            match r with
            | Sched.Done v when i mod 10 <> 7 ->
                Alcotest.(check int) "square in order" (i * i) v
            | Sched.Crashed (Failure _, _) when i mod 10 = 7 -> ()
            | Sched.Done _ -> Alcotest.failf "item %d should have crashed" i
            | Sched.Cancelled -> Alcotest.failf "item %d: unexpected cancel" i
            | Sched.Crashed (e, _) ->
                Alcotest.failf "item %d: unexpected %s" i
                  (Printexc.to_string e))
          results);
    case "map_result on a sequential pool isolates too" `Quick (fun () ->
        let pool = Sched.create ~size:1 () in
        match
          Sched.map_result ~pool
            (fun i -> if i = 1 then raise Exit else i)
            [ 0; 1; 2 ]
        with
        | [ Sched.Done 0; Sched.Crashed (Exit, _); Sched.Done 2 ] -> ()
        | _ -> Alcotest.fail "expected Done 0 / Crashed Exit / Done 2");
    case "all-crash input yields all Errors" `Quick (fun () ->
        let pool = Sched.create ~size:4 () in
        let results =
          Sched.map_result ~pool (fun _ -> raise Not_found) (List.init 8 Fun.id)
        in
        Alcotest.(check bool) "all Crashed" true
          (List.for_all
             (function Sched.Crashed (Not_found, _) -> true | _ -> false)
             results));
    case "raising Sched.Cancel yields Cancelled in position" `Quick (fun () ->
        let pool = Sched.create ~size:2 () in
        match
          Sched.map_result ~pool
            (fun i -> if i = 1 then raise Sched.Cancel else i * 2)
            [ 0; 1; 2 ]
        with
        | [ Sched.Done 0; Sched.Cancelled; Sched.Done 4 ] -> ()
        | _ -> Alcotest.fail "expected Done 0 / Cancelled / Done 4");
  ]

(* PHPSAFE_JOBS handling in [Sched.default_size]: valid values are honored,
   invalid ones fall back to the recommended size with a single stderr
   warning naming the bad value. *)

let with_jobs_env value f =
  let old = Sys.getenv_opt "PHPSAFE_JOBS" in
  Unix.putenv "PHPSAFE_JOBS" value;
  Fun.protect
    (* the empty string is treated as unset by default_size *)
    ~finally:(fun () -> Unix.putenv "PHPSAFE_JOBS" (Option.value old ~default:""))
    f

let capture_stderr f =
  flush stderr;
  let saved = Unix.dup Unix.stderr in
  let tmp = Filename.temp_file "sched_stderr" ".log" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stderr;
  Unix.close fd;
  let result =
    Fun.protect
      ~finally:(fun () ->
        flush stderr;
        Unix.dup2 saved Unix.stderr;
        Unix.close saved)
      f
  in
  let ic = open_in_bin tmp in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove tmp;
  (result, contents)

let count_occurrences ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i acc =
    if i + nl > hl then acc
    else if String.sub haystack i nl = needle then go (i + nl) (acc + 1)
    else go (i + 1) acc
  in
  if nl = 0 then 0 else go 0 0

let jobs_env_cases =
  [
    case "valid PHPSAFE_JOBS sets the pool size silently" `Quick (fun () ->
        let size, err =
          capture_stderr (fun () ->
              with_jobs_env "3" (fun () -> Sched.size (Sched.create ())))
        in
        Alcotest.(check int) "pool size" 3 size;
        Alcotest.(check string) "no warning" "" err);
    case "empty PHPSAFE_JOBS is treated as unset" `Quick (fun () ->
        let size, err =
          capture_stderr (fun () ->
              with_jobs_env "  " (fun () -> Sched.size (Sched.create ())))
        in
        Alcotest.(check bool) "falls back to >= 1" true (size >= 1);
        Alcotest.(check string) "no warning" "" err);
    (* single case so the one-time warning's ordering is under our control *)
    case "invalid PHPSAFE_JOBS warns once and falls back" `Quick (fun () ->
        let (size1, size2), err =
          capture_stderr (fun () ->
              let s1 =
                with_jobs_env "banana" (fun () -> Sched.size (Sched.create ()))
              in
              let s2 =
                with_jobs_env "0" (fun () -> Sched.size (Sched.create ()))
              in
              (s1, s2))
        in
        Alcotest.(check bool) "garbage falls back to >= 1" true (size1 >= 1);
        Alcotest.(check bool) "non-positive falls back to >= 1" true (size2 >= 1);
        Alcotest.(check int) "warned exactly once across both"
          1
          (count_occurrences ~needle:"invalid PHPSAFE_JOBS" err);
        Alcotest.(check bool) "warning names the bad value" true
          (count_occurrences ~needle:"\"banana\"" err = 1);
        Alcotest.(check bool) "warning names the fallback" true
          (count_occurrences ~needle:"job(s)" err = 1));
  ]

let refresh_cases =
  [
    case "refresh re-fits an auto-sized pool to the environment" `Quick
      (fun () ->
        let p = with_jobs_env "2" (fun () -> Sched.create ()) in
        Alcotest.(check int) "created at 2" 2 (Sched.size p);
        with_jobs_env "5" (fun () -> Sched.refresh p);
        Alcotest.(check int) "re-fitted to 5" 5 (Sched.size p);
        (* unchanged environment: refresh is a no-op *)
        with_jobs_env "5" (fun () -> Sched.refresh p);
        Alcotest.(check int) "stable when nothing changed" 5 (Sched.size p));
    case "refresh never touches an explicitly sized pool" `Quick (fun () ->
        let p = Sched.create ~size:3 () in
        with_jobs_env "7" (fun () -> Sched.refresh p);
        Alcotest.(check int) "pinned pools keep their size" 3 (Sched.size p));
    case "a refreshed pool schedules correctly at its new size" `Quick
      (fun () ->
        let p = with_jobs_env "1" (fun () -> Sched.create ()) in
        with_jobs_env "4" (fun () -> Sched.refresh p);
        let xs = List.init 64 Fun.id in
        Alcotest.(check (list int)) "map preserves order and results"
          (List.map (fun x -> x * x) xs)
          (Sched.map ~pool:p (fun x -> x * x) xs));
  ]

let quota_cases =
  [
    case "parse_cpu_quota: no quota, malformed, and rounding" `Quick (fun () ->
        let check label expected line =
          Alcotest.(check (option int)) label expected
            (Sched.parse_cpu_quota line)
        in
        check "\"max\" means no quota" None "max 100000";
        check "exact quota" (Some 2) "200000 100000";
        check "fractional quota rounds up" (Some 2) "150000 100000";
        check "sub-CPU quota clamps to 1" (Some 1) "50000 100000";
        check "trailing newline tolerated" (Some 4) "400000 100000\n";
        check "garbage is no quota" None "banana";
        check "zero period is no quota" None "100000 0";
        check "empty line is no quota" None "");
    case "default size never exceeds the host's domain count" `Quick
      (fun () ->
        let size, _ =
          capture_stderr (fun () ->
              with_jobs_env "" (fun () -> Sched.default_size ()))
        in
        Alcotest.(check bool) "1 <= size" true (size >= 1);
        Alcotest.(check bool) "size <= recommended_domain_count" true
          (size <= Domain.recommended_domain_count ()));
    case "cgroup quota (when present) caps the default size" `Quick (fun () ->
        match Sched.cpu_quota () with
        | None -> ()
        | Some quota ->
            let size, _ =
              capture_stderr (fun () ->
                  with_jobs_env "" (fun () -> Sched.default_size ()))
            in
            Alcotest.(check bool) "size <= quota" true (size <= max 1 quota));
  ]

let parallel_equals_sequential version name =
  case name `Quick (fun () ->
      let seq = Evalkit.Runner.evaluate version in
      let par = Evalkit.Runner.evaluate ~pool:(Sched.create ~size:4 ()) version in
      Alcotest.(check bool) "parallel output equals sequential" true
        (normalize seq = normalize par))

let driver_cases =
  [
    parallel_equals_sequential Corpus.Plan.V2012 "V2012 corpus plan";
    parallel_equals_sequential Corpus.Plan.V2014 "V2014 corpus plan";
  ]

let distinct_files (corpus : Corpus.t) =
  let module SS = Set.Make (String) in
  List.fold_left
    (fun acc (p : Corpus.Catalog.plugin_output) ->
      List.fold_left
        (fun acc (f : Phplang.Project.file) ->
          SS.add
            (f.Phplang.Project.path ^ "\x00" ^ Digest.string f.Phplang.Project.source)
            acc)
        acc p.Corpus.Catalog.po_project.Phplang.Project.files)
    SS.empty corpus.Corpus.plugins
  |> SS.cardinal

let cache_cases =
  [
    case "each file parsed once, the other tools hit the cache" `Quick
      (fun () ->
        Cache.clear Cache.shared;
        let ev = Evalkit.Runner.evaluate Corpus.Plan.V2012 in
        Alcotest.(check int) "files parsed = distinct project files"
          (distinct_files ev.Evalkit.Runner.ev_corpus)
          (Cache.misses Cache.shared);
        Alcotest.(check bool) "cache hits > 0" true (Cache.hits Cache.shared > 0));
    case "results identical with the cache disabled" `Quick (fun () ->
        let cached = Evalkit.Runner.evaluate Corpus.Plan.V2012 in
        Cache.set_enabled false;
        let uncached =
          Fun.protect
            ~finally:(fun () -> Cache.set_enabled true)
            (fun () -> Evalkit.Runner.evaluate Corpus.Plan.V2012)
        in
        Alcotest.(check bool) "same evaluation" true
          (normalize cached = normalize uncached));
    case "parallel run still parses each file once" `Quick (fun () ->
        Cache.clear Cache.shared;
        let ev =
          Evalkit.Runner.evaluate ~pool:(Sched.create ~size:4 ())
            Corpus.Plan.V2012
        in
        Alcotest.(check int) "files parsed = distinct project files"
          (distinct_files ev.Evalkit.Runner.ev_corpus)
          (Cache.misses Cache.shared));
  ]

let () =
  Alcotest.run "sched"
    [
      ("Sched.map", map_cases);
      ("Sched.map_result", map_result_cases);
      ("PHPSAFE_JOBS", jobs_env_cases);
      ("pool sizing", quota_cases);
      ("pool refresh", refresh_cases);
      ("parallel driver determinism", driver_cases);
      ("parse cache", cache_cases);
    ]
