(** Scheduler and parse-cache tests: the parallel evaluation driver must
    reproduce the sequential results exactly (the determinism guarantee the
    tables rely on), and the shared content-keyed parse cache must be
    transparent — identical results with it on or off, each distinct file
    parsed exactly once per run, the other tools hitting the cache. *)

module Cache = Phplang.Project.Parse_cache

(* Everything but the timing fields, which legitimately differ run to run. *)
let normalize (ev : Evalkit.Runner.evaluation) =
  ( ev.Evalkit.Runner.ev_version,
    List.map
      (fun (r : Evalkit.Runner.tool_run) -> r.Evalkit.Runner.tr_output)
      ev.Evalkit.Runner.ev_runs,
    ev.Evalkit.Runner.ev_classified,
    ev.Evalkit.Runner.ev_union )

let case = Alcotest.test_case

let map_cases =
  [
    case "map preserves input order" `Quick (fun () ->
        let pool = Sched.create ~size:4 () in
        let items = List.init 100 Fun.id in
        Alcotest.(check (list int)) "squares in order"
          (List.map (fun i -> i * i) items)
          (Sched.map ~pool (fun i -> i * i) items));
    case "map on empty and singleton lists" `Quick (fun () ->
        let pool = Sched.create ~size:4 () in
        Alcotest.(check (list int)) "empty" [] (Sched.map ~pool succ []);
        Alcotest.(check (list int)) "singleton" [ 2 ] (Sched.map ~pool succ [ 1 ]));
    case "exceptions propagate from workers" `Quick (fun () ->
        let pool = Sched.create ~size:4 () in
        Alcotest.check_raises "first failure re-raised" Exit (fun () ->
            ignore
              (Sched.map ~pool
                 (fun i -> if i = 7 then raise Exit else i)
                 (List.init 20 Fun.id))));
    case "size clamps to at least one" `Quick (fun () ->
        Alcotest.(check int) "size 0 clamps" 1 (Sched.size (Sched.create ~size:0 ()));
        Alcotest.(check bool) "default is >= 1" true
          (Sched.size (Sched.create ()) >= 1));
  ]

let parallel_equals_sequential version name =
  case name `Quick (fun () ->
      let seq = Evalkit.Runner.evaluate version in
      let par = Evalkit.Runner.evaluate ~pool:(Sched.create ~size:4 ()) version in
      Alcotest.(check bool) "parallel output equals sequential" true
        (normalize seq = normalize par))

let driver_cases =
  [
    parallel_equals_sequential Corpus.Plan.V2012 "V2012 corpus plan";
    parallel_equals_sequential Corpus.Plan.V2014 "V2014 corpus plan";
  ]

let distinct_files (corpus : Corpus.t) =
  let module SS = Set.Make (String) in
  List.fold_left
    (fun acc (p : Corpus.Catalog.plugin_output) ->
      List.fold_left
        (fun acc (f : Phplang.Project.file) ->
          SS.add
            (f.Phplang.Project.path ^ "\x00" ^ Digest.string f.Phplang.Project.source)
            acc)
        acc p.Corpus.Catalog.po_project.Phplang.Project.files)
    SS.empty corpus.Corpus.plugins
  |> SS.cardinal

let cache_cases =
  [
    case "each file parsed once, the other tools hit the cache" `Quick
      (fun () ->
        Cache.clear Cache.shared;
        let ev = Evalkit.Runner.evaluate Corpus.Plan.V2012 in
        Alcotest.(check int) "files parsed = distinct project files"
          (distinct_files ev.Evalkit.Runner.ev_corpus)
          (Cache.misses Cache.shared);
        Alcotest.(check bool) "cache hits > 0" true (Cache.hits Cache.shared > 0));
    case "results identical with the cache disabled" `Quick (fun () ->
        let cached = Evalkit.Runner.evaluate Corpus.Plan.V2012 in
        Cache.set_enabled false;
        let uncached =
          Fun.protect
            ~finally:(fun () -> Cache.set_enabled true)
            (fun () -> Evalkit.Runner.evaluate Corpus.Plan.V2012)
        in
        Alcotest.(check bool) "same evaluation" true
          (normalize cached = normalize uncached));
    case "parallel run still parses each file once" `Quick (fun () ->
        Cache.clear Cache.shared;
        let ev =
          Evalkit.Runner.evaluate ~pool:(Sched.create ~size:4 ())
            Corpus.Plan.V2012
        in
        Alcotest.(check int) "files parsed = distinct project files"
          (distinct_files ev.Evalkit.Runner.ev_corpus)
          (Cache.misses Cache.shared));
  ]

let () =
  Alcotest.run "sched"
    [
      ("Sched.map", map_cases);
      ("parallel driver determinism", driver_cases);
      ("parse cache", cache_cases);
    ]
