(** Fault-injection harness: hundreds of deterministically mutated plugins
    (truncation, byte corruption, unterminated literals, pathological
    nesting, include cycles, binary/empty files) run through all three
    analyzers.  The invariant: every mutant yields a structured
    [Report.result] — never an escaped exception, never a hang — and the
    robustness table is byte-identical at any pool size.  Plus the
    crash-containment guarantee: a tool that dies on one plugin still
    produces results for every other plugin. *)

open Evalkit

let case = Alcotest.test_case

(* 8 base plugins × 26 mutants = 208 mutants ≥ the 200 the acceptance
   criteria ask for; every Faults.kind appears many times. *)
let mutant_seed = 0xFA_17
let mutants_per_plugin = 26
let base_plugins = 8

let base_corpus = lazy (Corpus.generate Corpus.Plan.V2012)

let all_mutants =
  lazy
    (let corpus = Lazy.force base_corpus in
     let plugins =
       List.filteri (fun i _ -> i < base_plugins) corpus.Corpus.plugins
     in
     List.concat_map
       (fun (p : Corpus.Catalog.plugin_output) ->
         Faults.mutants ~seed:mutant_seed ~count:mutants_per_plugin
           p.Corpus.Catalog.po_project)
       plugins)

let tools = Runner.default_tools ()

let mutant_cases =
  [
    case "mutant generation is deterministic" `Quick (fun () ->
        let p =
          (List.hd (Lazy.force base_corpus).Corpus.plugins)
            .Corpus.Catalog.po_project
        in
        let a = Faults.mutants ~seed:7 ~count:40 p in
        let b = Faults.mutants ~seed:7 ~count:40 p in
        Alcotest.(check bool) "same mutants" true (a = b);
        let c = Faults.mutants ~seed:8 ~count:40 p in
        Alcotest.(check bool) "different seed differs" true (a <> c));
    case "at least 200 mutants, all kinds represented" `Quick (fun () ->
        let ms = Lazy.force all_mutants in
        Alcotest.(check bool) "count >= 200" true (List.length ms >= 200);
        List.iter
          (fun kind ->
            Alcotest.(check bool)
              ("kind present: " ^ Faults.kind_label kind)
              true
              (List.exists (fun (k, _) -> k = kind) ms))
          Faults.all_kinds);
  ]

(* The core no-crash sweep: every (tool, mutant) pair must return a result
   with one outcome per file.  Any escaped exception fails the test with
   the tool, mutant and exception named. *)
let no_crash_cases =
  [
    case "every analyzer survives every mutant" `Slow (fun () ->
        let ms = Lazy.force all_mutants in
        let failed_outcomes = ref 0 in
        List.iter
          (fun (tool : Secflow.Tool.t) ->
            List.iter
              (fun ((kind : Faults.kind), (m : Phplang.Project.t)) ->
                match tool.Secflow.Tool.analyze_project m with
                | result ->
                    failed_outcomes :=
                      !failed_outcomes
                      + List.length (Secflow.Report.failed_files result);
                    Alcotest.(check int)
                      (Printf.sprintf "%s/%s: one outcome per file"
                         tool.Secflow.Tool.name m.Phplang.Project.name)
                      (Phplang.Project.file_count m)
                      (List.length result.Secflow.Report.outcomes)
                | exception exn ->
                    Alcotest.failf "%s crashed on %s (%s): %s"
                      tool.Secflow.Tool.name m.Phplang.Project.name
                      (Faults.kind_label kind) (Printexc.to_string exn))
              ms)
          tools;
        (* sanity: the faults actually bite — a sweep where nothing ever
           fails would mean the mutator is a no-op *)
        Alcotest.(check bool) "some mutants produce Failed outcomes" true
          (!failed_outcomes > 0));
  ]

(* Robustness-table determinism across pool sizes: the same (tool × mutant)
   grid through Sched.map_result at --jobs 1 and --jobs 4 must render the
   byte-identical table. *)
let robustness_table ~jobs ms =
  let pool = Sched.create ~size:jobs () in
  let items =
    List.concat_map
      (fun (tool : Secflow.Tool.t) -> List.map (fun m -> (tool, m)) ms)
      tools
  in
  let rows =
    Sched.map_result ~pool
      (fun ((tool : Secflow.Tool.t), (kind, (m : Phplang.Project.t))) ->
        let r = tool.Secflow.Tool.analyze_project m in
        Printf.sprintf "%-8s %-12s %s: failed=%d errors=%d unresolved=%d"
          tool.Secflow.Tool.name
          (Faults.kind_label kind)
          m.Phplang.Project.name
          (List.length (Secflow.Report.failed_files r))
          r.Secflow.Report.errors r.Secflow.Report.unresolved_includes)
      items
    |> List.map (function
         | Sched.Done row -> row
         | Sched.Cancelled -> "ESCAPED: cancelled"
         | Sched.Crashed (exn, _) -> "ESCAPED: " ^ Printexc.to_string exn)
  in
  String.concat "\n" rows

let determinism_cases =
  [
    case "robustness table byte-identical at --jobs 1 and --jobs 4" `Slow
      (fun () ->
        (* a slice of the grid keeps the doubled sweep affordable *)
        let ms =
          List.filteri (fun i _ -> i mod 3 = 0) (Lazy.force all_mutants)
        in
        let seq = robustness_table ~jobs:1 ms in
        let par = robustness_table ~jobs:4 ms in
        Alcotest.(check string) "tables identical" seq par;
        let contains ~needle hay =
          let nl = String.length needle and hl = String.length hay in
          let rec go i =
            i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "no escaped exceptions" false
          (contains ~needle:"ESCAPED:" seq));
  ]

(* Crash containment in the corpus driver: a tool whose analyze_project
   raises on one plugin still yields results for the other 34, in both the
   sequential and the parallel driver, with identical outputs. *)
let containment_cases =
  [
    case "a crashing plugin doesn't abort the corpus run" `Quick (fun () ->
        let corpus = Lazy.force base_corpus in
        let victim =
          (List.nth corpus.Corpus.plugins 3).Corpus.Catalog.po_name
        in
        let crashy =
          {
            Secflow.Tool.name = "crashy";
            analyze_project =
              (fun (p : Phplang.Project.t) ->
                if String.equal p.Phplang.Project.name victim then
                  failwith "deliberate crash"
                else Rips.tool.Secflow.Tool.analyze_project p);
          }
        in
        let seq = Runner.run_tool crashy corpus in
        let par =
          List.hd
            (Runner.run_tools_parallel
               ~pool:(Sched.create ~size:4 ())
               [ crashy ] corpus)
        in
        Alcotest.(check int) "a result for every plugin"
          (List.length corpus.Corpus.plugins)
          (List.length seq.Runner.tr_output.Matching.to_results);
        Alcotest.(check bool) "sequential = parallel" true
          (seq.Runner.tr_output = par.Runner.tr_output);
        List.iter
          (fun (name, (r : Secflow.Report.result)) ->
            if String.equal name victim then begin
              Alcotest.(check bool) "victim: all files Failed (Crashed _)"
                true
                (r.Secflow.Report.outcomes <> []
                && List.for_all
                     (fun (_, o) ->
                       match o with
                       | Secflow.Report.Failed (Secflow.Report.Crashed _) ->
                           true
                       | _ -> false)
                     r.Secflow.Report.outcomes);
              Alcotest.(check int) "victim: one error" 1
                r.Secflow.Report.errors
            end
            else
              Alcotest.(check bool) (name ^ ": real outcomes") true
                (r.Secflow.Report.outcomes <> []
                && List.exists
                     (fun (_, o) -> o = Secflow.Report.Analyzed)
                     r.Secflow.Report.outcomes))
          seq.Runner.tr_output.Matching.to_results);
    case "evaluate classifies a run containing a crashed tool" `Quick
      (fun () ->
        let corpus = Lazy.force base_corpus in
        let victim =
          (List.hd corpus.Corpus.plugins).Corpus.Catalog.po_name
        in
        let crashy =
          {
            Secflow.Tool.name = "crashy";
            analyze_project =
              (fun (p : Phplang.Project.t) ->
                if String.equal p.Phplang.Project.name victim then
                  raise Stack_overflow
                else Pixy.tool.Secflow.Tool.analyze_project p);
          }
        in
        let ev =
          Runner.evaluate ~tools:[ crashy ]
            ~pool:(Sched.create ~size:2 ())
            Corpus.Plan.V2012
        in
        let classified = Runner.classified_for ev "crashy" in
        ignore classified;
        let run = Runner.run_for ev "crashy" in
        let rb = Robustness.of_run run in
        Alcotest.(check bool) "crashed files counted" true
          (List.mem_assoc "crashed" rb.Robustness.rb_by_reason));
  ]

let () =
  Alcotest.run "faults"
    [
      ("mutator", mutant_cases);
      ("no-crash sweep", no_crash_cases);
      ("determinism", determinism_cases);
      ("crash containment", containment_cases);
    ]
