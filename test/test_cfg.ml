(** CFG construction tests: block structure, edges for each control
    construct, jump wiring and reverse post-order. *)

module A = Phplang.Ast
module Cfg = Pixy.Cfg

let build src =
  Cfg.build (Phplang.Parser.parse_source ~file:"t.php" ("<?php\n" ^ src))

let reachable cfg =
  let seen = Hashtbl.create 16 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      List.iter go (Cfg.node cfg id).Cfg.succs
    end
  in
  go cfg.Cfg.entry;
  Hashtbl.length seen

let exit_reachable cfg =
  let seen = Hashtbl.create 16 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      List.iter go (Cfg.node cfg id).Cfg.succs
    end
  in
  go cfg.Cfg.entry;
  Hashtbl.mem seen cfg.Cfg.exit_

let case name f = Alcotest.test_case name `Quick f

let cases =
  [
    case "straight-line code is one path" (fun () ->
        let cfg = build "$a = 1;\n$b = 2;\necho $b;" in
        Alcotest.(check bool) "exit reachable" true (exit_reachable cfg);
        let entry = Cfg.node cfg cfg.Cfg.entry in
        Alcotest.(check int) "all stmts in entry" 3 (List.length entry.Cfg.stmts));
    case "if creates branch and merge" (fun () ->
        let cfg = build "if ($c) {\n$a = 1;\n}\necho $a;" in
        let entry = Cfg.node cfg cfg.Cfg.entry in
        Alcotest.(check int) "entry has two successors" 2
          (List.length entry.Cfg.succs);
        Alcotest.(check bool) "exit reachable" true (exit_reachable cfg));
    case "if-else: both branches reach the merge" (fun () ->
        let cfg = build "if ($c) {\n$a = 1;\n} else {\n$a = 2;\n}\necho $a;" in
        Alcotest.(check bool) "exit reachable" true (exit_reachable cfg));
    case "while has a back edge" (fun () ->
        let cfg = build "while ($c) {\n$a = 1;\n}" in
        let has_back =
          Array.exists
            (fun (n : Cfg.node) ->
              List.exists (fun s -> s < n.Cfg.id) n.Cfg.succs)
            cfg.Cfg.nodes
        in
        Alcotest.(check bool) "back edge exists" true has_back);
    case "return jumps to exit" (fun () ->
        let cfg = build "return 1;\necho 'dead';" in
        let entry = Cfg.node cfg cfg.Cfg.entry in
        Alcotest.(check (list int)) "entry -> exit" [ cfg.Cfg.exit_ ]
          entry.Cfg.succs);
    case "exit() jumps to exit node" (fun () ->
        let cfg = build "$a = 1;\nexit;\necho $a;" in
        let entry = Cfg.node cfg cfg.Cfg.entry in
        Alcotest.(check (list int)) "entry -> exit" [ cfg.Cfg.exit_ ]
          entry.Cfg.succs);
    case "break wires to loop exit" (fun () ->
        let cfg = build "while ($c) {\nbreak;\n$x = 1;\n}\necho 'after';" in
        Alcotest.(check bool) "exit reachable" true (exit_reachable cfg));
    case "continue wires to header" (fun () ->
        let cfg = build "while ($c) {\ncontinue;\n}\necho 'after';" in
        Alcotest.(check bool) "exit reachable" true (exit_reachable cfg));
    case "foreach header carries the binding" (fun () ->
        let cfg = build "foreach ($xs as $v) {\necho $v;\n}" in
        let has_binding =
          Array.exists
            (fun (n : Cfg.node) ->
              List.exists
                (fun (s : A.stmt) ->
                  match s.A.s with A.Foreach (_, _, []) -> true | _ -> false)
                n.Cfg.stmts)
            cfg.Cfg.nodes
        in
        Alcotest.(check bool) "binding present" true has_binding);
    case "switch cases fall through" (fun () ->
        let cfg =
          build "switch ($m) {\ncase 1:\n$a = 1;\ncase 2:\n$a = 2;\nbreak;\n}"
        in
        Alcotest.(check bool) "exit reachable" true (exit_reachable cfg));
    case "declarations produce no statements" (fun () ->
        let cfg = build "function f() {\necho 1;\n}\nclass A {\n}" in
        let total =
          Array.fold_left
            (fun acc (n : Cfg.node) -> acc + List.length n.Cfg.stmts)
            0 cfg.Cfg.nodes
        in
        Alcotest.(check int) "no statements" 0 total);
    case "rpo starts at entry and is complete for reachable nodes" (fun () ->
        let cfg = build "if ($c) {\n$a = 1;\n} else {\n$b = 2;\n}\nwhile ($d) {\n$e = 3;\n}" in
        let order = Cfg.rpo cfg in
        Alcotest.(check int) "first is entry" cfg.Cfg.entry (List.hd order);
        Alcotest.(check int) "covers reachable nodes" (reachable cfg)
          (List.length order));
    case "try-catch: body and handlers both flow to merge" (fun () ->
        let cfg =
          build "try {\n$a = 1;\n} catch (E $e) {\n$a = 2;\n}\necho $a;"
        in
        Alcotest.(check bool) "exit reachable" true (exit_reachable cfg));
  ]

(* ------------------------------------------------------------------ *)
(* Fixpoint engine: a toy tainted-variable analysis over the shared    *)
(* CFG.  [$x = $_GET[...]] gens, [$x = 'lit'] kills, [$x = $y] copies. *)
(* ------------------------------------------------------------------ *)

module F = Dataflow.Fixpoint
module SMap = Map.Make (String)

let toy_transfer st (s : A.stmt) =
  match s.A.s with
  | A.Expr { A.e = A.Assign ({ A.e = A.Var x; _ }, rhs); _ } -> (
      match rhs.A.e with
      | A.ArrayGet ({ A.e = A.Var "$_GET"; _ }, _) -> SMap.add x true st
      | A.Var y -> SMap.add x (SMap.mem y st && SMap.find y st) st
      | _ -> SMap.add x false st)
  | _ -> st

let solve ?(max_passes = 50) src =
  let cfg = build src in
  ( cfg,
    F.solve
      { F.init = SMap.empty; bottom = SMap.empty;
        join = SMap.union (fun _ a b -> Some (a || b));
        equal = SMap.equal Bool.equal;
        transfer = toy_transfer; max_passes }
      cfg )

let tainted res x =
  match SMap.find_opt x res.F.exit_state with Some b -> b | None -> false

let fixpoint_cases =
  [
    case "straight-line gen then kill" (fun () ->
        let _, res = solve "$a = $_GET['x'];\n$a = 'safe';" in
        Alcotest.(check bool) "killed" false (tainted res "$a");
        Alcotest.(check bool) "converged" true res.F.converged);
    case "branch join keeps the tainted side" (fun () ->
        let _, res =
          solve "if ($c) {\n$a = $_GET['x'];\n} else {\n$a = 'safe';\n}"
        in
        Alcotest.(check bool) "joined tainted" true (tainted res "$a"));
    case "kill in one branch does not kill the other" (fun () ->
        let _, res =
          solve "$a = $_GET['x'];\nif ($c) {\n$a = 'safe';\n}"
        in
        Alcotest.(check bool) "still tainted" true (tainted res "$a"));
    case "loop back-edge re-generates" (fun () ->
        (* $v only becomes tainted on the second pass, through the back
           edge: pass 1 copies the clean $w, pass 2 the tainted one *)
        let _, res =
          solve "$w = 'c';\nwhile ($p) {\n$v = $w;\n$w = $_GET['x'];\n}"
        in
        Alcotest.(check bool) "loop-carried" true (tainted res "$v");
        Alcotest.(check bool) "needed >1 pass" true (res.F.passes > 1);
        Alcotest.(check bool) "converged" true res.F.converged);
    case "exiting branch does not reach the join" (fun () ->
        let cfg, res =
          solve "$a = 'safe';\nif ($c) {\n$a = $_GET['x'];\nexit;\n}\necho $a;"
        in
        (* the echo node's out-state must be the fallthrough one *)
        let echo_clean =
          Array.exists
            (fun (n : Cfg.node) ->
              List.exists
                (fun (s : A.stmt) ->
                  match s.A.s with A.Echo _ -> true | _ -> false)
                n.Cfg.stmts
              &&
              match res.F.out_states.(n.Cfg.id) with
              | Some st -> not (SMap.mem "$a" st && SMap.find "$a" st)
              | None -> false)
            cfg.Cfg.nodes
        in
        Alcotest.(check bool) "echo sees the clean state" true echo_clean);
    case "dead nodes have no out-state" (fun () ->
        let cfg, res = solve "exit;\n$a = $_GET['x'];" in
        let dead_unvisited =
          Array.for_all
            (fun (n : Cfg.node) ->
              match res.F.out_states.(n.Cfg.id) with
              | None -> true
              | Some _ -> n.Cfg.id = cfg.Cfg.entry || n.Cfg.id = cfg.Cfg.exit_)
            cfg.Cfg.nodes
        in
        Alcotest.(check bool) "only entry/exit computed" true dead_unvisited);
    case "pass budget exhaustion reports non-convergence" (fun () ->
        let _, res =
          solve ~max_passes:1
            "$w = 'c';\nwhile ($p) {\n$v = $w;\n$w = $_GET['x'];\n}"
        in
        Alcotest.(check bool) "not converged" false res.F.converged;
        Alcotest.(check int) "spent the budget" 1 res.F.passes);
    case "rpo is stable across rebuilds" (fun () ->
        let src =
          "if ($c) {\n$a = 1;\n} else {\n$b = 2;\n}\nwhile ($d) {\n$e = 3;\n}"
        in
        Alcotest.(check (list int)) "same order"
          (Cfg.rpo (build src)) (Cfg.rpo (build src)));
    case "solver result is deterministic" (fun () ->
        let src = "if ($c) {\n$a = $_GET['x'];\n} else {\n$a = 'safe';\n}" in
        let _, r1 = solve src and _, r2 = solve src in
        Alcotest.(check bool) "same exit state" true
          (SMap.equal Bool.equal r1.F.exit_state r2.F.exit_state);
        Alcotest.(check int) "same pass count" r1.F.passes r2.F.passes);
  ]

let () =
  Alcotest.run "cfg"
    [ ("construction", cases); ("fixpoint engine", fixpoint_cases) ]
