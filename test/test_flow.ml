(** E13 ground-truth tests: the flow-sensitive body walk ([--flow]) must
    both find the branch- and loop-carried taint the flat walk loses (new
    TPs) and exonerate the exiting-branch foils the flat walk flags
    (removed FPs) — the two halves of the precision delta claimed in
    EXPERIMENTS.md E13. *)

module Fd = Evalkit.Flow_delta
module Gt = Corpus.Gt

let case name f = Alcotest.test_case name `Quick f

(* Running the suite is cheap (2 small plugins); compute it once. *)
let delta = lazy (Fd.run ())

let cases =
  [
    case "suite composition matches the generator" (fun () ->
        let d = Lazy.force delta in
        Alcotest.(check bool) "has reals" true (d.Fd.fd_reals > 0);
        Alcotest.(check bool) "has foils" true (d.Fd.fd_foils > 0));
    case "--flow finds the flow-carried TPs the flat walk misses" (fun () ->
        let d = Lazy.force delta in
        Alcotest.(check bool) "at least one new TP" true
          (List.length d.Fd.fd_new_tp >= 1);
        List.iter
          (fun s ->
            Alcotest.(check bool)
              (s.Gt.seed_id ^ " is a real seed")
              true (Gt.is_real s))
          d.Fd.fd_new_tp);
    case "--flow removes every exiting-branch foil FP" (fun () ->
        let d = Lazy.force delta in
        Alcotest.(check bool) "at least one removed FP" true
          (List.length d.Fd.fd_removed_fp >= 1);
        (* the acceptance bar: the flow walk removes every seeded foil the
           flat walk flags, i.e. the flow run has zero trap FPs *)
        Alcotest.(check int) "no trap FP left under --flow" 0
          (List.length d.Fd.fd_flow.Evalkit.Matching.cl_trap_fp);
        List.iter
          (fun s ->
            Alcotest.(check bool)
              (s.Gt.seed_id ^ " is a foil")
              false (Gt.is_real s))
          d.Fd.fd_removed_fp);
    case "--flow keeps every seeded TP (full recall, full precision)"
      (fun () ->
        let d = Lazy.force delta in
        let module M = Evalkit.Metrics in
        Alcotest.(check int) "all reals found" d.Fd.fd_reals
          d.Fd.fd_flow_metrics.M.tp;
        Alcotest.(check int) "no FN" 0 d.Fd.fd_flow_metrics.M.fn;
        Alcotest.(check int) "no FP" 0 d.Fd.fd_flow_metrics.M.fp);
    case "every new TP names a flow-carried pattern" (fun () ->
        let d = Lazy.force delta in
        List.iter
          (fun s ->
            Alcotest.(check bool)
              (s.Gt.seed_id ^ "/" ^ s.Gt.pattern)
              true
              (List.mem s.Gt.pattern
                 [ "flow-branch-taint"; "flow-loop-carried" ]))
          d.Fd.fd_new_tp);
    case "every removed FP names the exiting-branch foil" (fun () ->
        let d = Lazy.force delta in
        List.iter
          (fun s ->
            Alcotest.(check string)
              (s.Gt.seed_id ^ "/" ^ s.Gt.pattern)
              "trap-flow-exit-branch" s.Gt.pattern)
          d.Fd.fd_removed_fp);
    case "raw heredoc and <?= seeds are kept by both variants" (fun () ->
        let d = Lazy.force delta in
        let raw =
          List.filter
            (fun (s : Gt.seed) ->
              List.mem s.Gt.pattern
                [ "flow-heredoc-sqli"; "flow-short-echo-xss" ])
            (Lazy.force delta).Fd.fd_flat.Evalkit.Matching.cl_tp
        in
        Alcotest.(check bool) "flat keeps the raw seeds" true
          (List.length raw >= 2);
        List.iter
          (fun (s : Gt.seed) ->
            Alcotest.(check bool)
              (s.Gt.seed_id ^ " kept under --flow")
              true
              (List.exists
                 (fun (s' : Gt.seed) ->
                   String.equal s.Gt.seed_id s'.Gt.seed_id)
                 d.Fd.fd_flow.Evalkit.Matching.cl_tp))
          raw);
    case "the printed table is deterministic across runs" (fun () ->
        let render d = Format.asprintf "%a" Fd.print d in
        Alcotest.(check string) "identical output"
          (render (Fd.run ()))
          (render (Fd.run ())));
  ]

let () = Alcotest.run "flow delta" [ ("E13 (--flow)", cases) ]
