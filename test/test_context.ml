(** E11 ground-truth tests: the context-sensitive sanitization pass
    ([--contexts]) must both find context-mismatch vulnerabilities the flat
    analysis misses (new TPs) and exonerate the properly-quoted foils the
    flat analysis flags (removed FPs) — the two halves of the precision
    delta claimed in EXPERIMENTS.md E11. *)

module Cd = Evalkit.Context_delta
module Gt = Corpus.Gt

let case name f = Alcotest.test_case name `Quick f

(* Running the suite is cheap (2 small plugins); compute it once. *)
let delta = lazy (Cd.run ())

let cases =
  [
    case "suite composition matches the generator" (fun () ->
        let d = Lazy.force delta in
        Alcotest.(check bool) "has reals" true (d.Cd.cd_reals > 0);
        Alcotest.(check bool) "has foils" true (d.Cd.cd_foils > 0));
    case "--contexts finds context-mismatch TPs the flat pass misses"
      (fun () ->
        let d = Lazy.force delta in
        Alcotest.(check bool) "at least one new TP" true
          (List.length d.Cd.cd_new_tp >= 1);
        List.iter
          (fun s ->
            Alcotest.(check bool)
              (s.Gt.seed_id ^ " is a real seed")
              true (Gt.is_real s))
          d.Cd.cd_new_tp);
    case "--contexts removes foil FPs the flat pass reports" (fun () ->
        let d = Lazy.force delta in
        Alcotest.(check bool) "at least one removed FP" true
          (List.length d.Cd.cd_removed_fp >= 1);
        List.iter
          (fun s ->
            Alcotest.(check bool)
              (s.Gt.seed_id ^ " is a foil")
              false (Gt.is_real s))
          d.Cd.cd_removed_fp);
    case "context pass strictly improves precision and recall" (fun () ->
        let d = Lazy.force delta in
        let module M = Evalkit.Metrics in
        Alcotest.(check bool) "precision up" true
          (M.precision d.Cd.cd_ctx_metrics
          > M.precision d.Cd.cd_default_metrics
          || Float.is_nan (M.precision d.Cd.cd_default_metrics));
        Alcotest.(check bool) "recall up" true
          (M.recall d.Cd.cd_ctx_metrics > M.recall d.Cd.cd_default_metrics));
    case "every new TP names a context-mismatch pattern" (fun () ->
        let d = Lazy.force delta in
        List.iter
          (fun s ->
            Alcotest.(check bool)
              (s.Gt.seed_id ^ "/" ^ s.Gt.pattern)
              true
              (List.mem s.Gt.pattern
                 [ "ctx-attr-unquoted"; "ctx-js-string"; "ctx-sql-numeric" ]))
          d.Cd.cd_new_tp);
    case "every removed FP names a revert foil" (fun () ->
        let d = Lazy.force delta in
        List.iter
          (fun s ->
            Alcotest.(check bool)
              (s.Gt.seed_id ^ "/" ^ s.Gt.pattern)
              true
              (List.mem s.Gt.pattern
                 [ "trap-ctx-revert-body"; "trap-ctx-revert-attr" ]))
          d.Cd.cd_removed_fp);
    case "the printed table is deterministic across runs" (fun () ->
        let render d = Format.asprintf "%a" Cd.print d in
        Alcotest.(check string) "identical output"
          (render (Cd.run ()))
          (render (Cd.run ())));
  ]

let () = Alcotest.run "context delta" [ ("E11 (--contexts)", cases) ]
