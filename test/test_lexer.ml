(** Lexer unit tests: token kinds, lexemes, line numbers, string handling,
    comments, casts, operators and PHP tag transitions. *)

open Phplang

let lex src = Lexer.tokenize_significant src

let kinds src =
  lex src
  |> List.filter_map (fun (t : Token.t) ->
         if t.Token.kind = Token.T_EOF then None else Some t.Token.kind)

let lexemes src =
  lex src
  |> List.filter_map (fun (t : Token.t) ->
         if t.Token.kind = Token.T_EOF then None else Some t.Token.lexeme)

let check_kinds name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let got = kinds src |> List.map Token.name in
      let want = List.map Token.name expected in
      Alcotest.(check (list string)) name want got)

let t = Token.T_OPEN_TAG

let cases =
  [
    check_kinds "open tag and variable" "<?php $x;"
      [ t; Token.T_VARIABLE; Token.Punct ];
    check_kinds "superglobal name" "<?php $_GET;"
      [ t; Token.T_VARIABLE; Token.Punct ];
    check_kinds "keywords case-insensitive" "<?php IF Else WHILE;"
      [ t; Token.T_IF; Token.T_ELSE; Token.T_WHILE; Token.Punct ];
    check_kinds "die is exit" "<?php die;" [ t; Token.T_EXIT; Token.Punct ];
    check_kinds "identifier vs keyword" "<?php echoes;"
      [ t; Token.T_STRING; Token.Punct ];
    check_kinds "integers and floats" "<?php 42 3.14;"
      [ t; Token.T_LNUMBER; Token.T_DNUMBER; Token.Punct ];
    check_kinds "single-quoted string" "<?php 'abc';"
      [ t; Token.T_CONSTANT_STRING; Token.Punct ];
    check_kinds "double-quoted string" "<?php \"a $b c\";"
      [ t; Token.T_ENCAPSED_STRING; Token.Punct ];
    check_kinds "object operator" "<?php $a->b;"
      [ t; Token.T_VARIABLE; Token.T_OBJECT_OPERATOR; Token.T_STRING; Token.Punct ];
    check_kinds "double colon" "<?php A::b;"
      [ t; Token.T_STRING; Token.T_DOUBLE_COLON; Token.T_STRING; Token.Punct ];
    check_kinds "comparison operators" "<?php 1 == 2 === 3 != 4 !== 5;"
      [ t; Token.T_LNUMBER; Token.T_IS_EQUAL; Token.T_LNUMBER;
        Token.T_IS_IDENTICAL; Token.T_LNUMBER; Token.T_IS_NOT_EQUAL;
        Token.T_LNUMBER; Token.T_IS_NOT_IDENTICAL; Token.T_LNUMBER; Token.Punct ];
    check_kinds "compound assignment" "<?php $a .= $b;"
      [ t; Token.T_VARIABLE; Token.T_CONCAT_EQUAL; Token.T_VARIABLE; Token.Punct ];
    check_kinds "increment" "<?php $i++;"
      [ t; Token.T_VARIABLE; Token.T_INC; Token.Punct ];
    check_kinds "boolean operators" "<?php $a && $b || $c;"
      [ t; Token.T_VARIABLE; Token.T_BOOLEAN_AND; Token.T_VARIABLE;
        Token.T_BOOLEAN_OR; Token.T_VARIABLE; Token.Punct ];
    check_kinds "logical keywords" "<?php $a and $b or $c;"
      [ t; Token.T_VARIABLE; Token.T_LOGICAL_AND; Token.T_VARIABLE;
        Token.T_LOGICAL_OR; Token.T_VARIABLE; Token.Punct ];
    check_kinds "int cast" "<?php (int) $x;"
      [ t; Token.T_INT_CAST; Token.T_VARIABLE; Token.Punct ];
    check_kinds "cast with inner spaces" "<?php ( integer ) $x;"
      [ t; Token.T_INT_CAST; Token.T_VARIABLE; Token.Punct ];
    check_kinds "parens not cast" "<?php (intdiv) ;"
      [ t; Token.Punct; Token.T_STRING; Token.Punct; Token.Punct ];
    check_kinds "double arrow" "<?php array('a' => 1);"
      [ t; Token.T_ARRAY; Token.Punct; Token.T_CONSTANT_STRING; Token.T_DOUBLE_ARROW;
        Token.T_LNUMBER; Token.Punct; Token.Punct ];
    check_kinds "close tag to inline html"
      "<?php $x; ?>hello<?php $y;"
      [ t; Token.T_VARIABLE; Token.Punct; Token.T_CLOSE_TAG; Token.T_INLINE_HTML;
        t; Token.T_VARIABLE; Token.Punct ];
  ]

let number_cases =
  [
    Alcotest.test_case "hex literal is one integer token" `Quick (fun () ->
        Alcotest.(check (list string)) "lexemes" [ "<?php"; "0x1F"; ";" ]
          (lexemes "<?php 0x1F;");
        Alcotest.(check (list string)) "kinds"
          [ "T_OPEN_TAG"; "T_LNUMBER"; "PUNCT" ]
          (kinds "<?php 0x1F;" |> List.map Token.name));
    Alcotest.test_case "uppercase hex prefix" `Quick (fun () ->
        Alcotest.(check (list string)) "lexemes" [ "<?php"; "0Xff"; ";" ]
          (lexemes "<?php 0Xff;"));
    Alcotest.test_case "binary literal" `Quick (fun () ->
        Alcotest.(check (list string)) "lexemes" [ "<?php"; "0b1011"; ";" ]
          (lexemes "<?php 0b1011;"));
    Alcotest.test_case "octal literal stays one token" `Quick (fun () ->
        Alcotest.(check (list string)) "lexemes" [ "<?php"; "0755"; ";" ]
          (lexemes "<?php 0755;"));
    Alcotest.test_case "bare 0x is integer then identifier" `Quick (fun () ->
        Alcotest.(check (list string)) "kinds"
          [ "T_OPEN_TAG"; "T_LNUMBER"; "T_STRING"; "PUNCT" ]
          (kinds "<?php 0xg;" |> List.map Token.name));
    Alcotest.test_case "exponent float" `Quick (fun () ->
        Alcotest.(check (list string)) "kinds"
          [ "T_OPEN_TAG"; "T_DNUMBER"; "PUNCT" ]
          (kinds "<?php 1e3;" |> List.map Token.name);
        Alcotest.(check (list string)) "lexemes" [ "<?php"; "1e3"; ";" ]
          (lexemes "<?php 1e3;"));
    Alcotest.test_case "signed exponent with fraction" `Quick (fun () ->
        Alcotest.(check (list string)) "lexemes" [ "<?php"; "1.5E-2"; ";" ]
          (lexemes "<?php 1.5E-2;");
        Alcotest.(check (list string)) "plus sign" [ "<?php"; "2e+10"; ";" ]
          (lexemes "<?php 2e+10;"));
    Alcotest.test_case "trailing e is not an exponent" `Quick (fun () ->
        Alcotest.(check (list string)) "kinds"
          [ "T_OPEN_TAG"; "T_LNUMBER"; "T_STRING"; "PUNCT" ]
          (kinds "<?php 5en;" |> List.map Token.name));
    Alcotest.test_case "plain integers and floats still lex" `Quick (fun () ->
        Alcotest.(check (list string)) "kinds"
          [ "T_OPEN_TAG"; "T_LNUMBER"; "T_DNUMBER"; "PUNCT" ]
          (kinds "<?php 42 3.14;" |> List.map Token.name));
  ]

let line_cases =
  [
    Alcotest.test_case "line numbers track newlines" `Quick (fun () ->
        let tokens = lex "<?php\n$a;\n\n$b;" in
        let var_lines =
          List.filter_map
            (fun (tok : Token.t) ->
              if tok.Token.kind = Token.T_VARIABLE then Some tok.Token.line
              else None)
            tokens
        in
        Alcotest.(check (list int)) "lines" [ 2; 4 ] var_lines);
    Alcotest.test_case "backslash-newline in single-quoted string keeps lines"
      `Quick (fun () ->
        (* regression: the escape branch consumes two characters; the
           consumed newline must still bump the line counter *)
        let tokens = lex "<?php $a = 'x\\\ny';\n$b;" in
        let b_line =
          List.find_map
            (fun (tok : Token.t) ->
              if tok.Token.lexeme = "$b" then Some tok.Token.line else None)
            tokens
        in
        Alcotest.(check (option int)) "line of $b" (Some 3) b_line);
    Alcotest.test_case "backslash-newline in double-quoted string keeps lines"
      `Quick (fun () ->
        let tokens = lex "<?php $a = \"x\\\ny\";\n$b;" in
        let b_line =
          List.find_map
            (fun (tok : Token.t) ->
              if tok.Token.lexeme = "$b" then Some tok.Token.line else None)
            tokens
        in
        Alcotest.(check (option int)) "line of $b" (Some 3) b_line);
    Alcotest.test_case "lines inside strings" `Quick (fun () ->
        let tokens = lex "<?php $a = 'x\ny';\n$b;" in
        let b_line =
          List.find_map
            (fun (tok : Token.t) ->
              if tok.Token.lexeme = "$b" then Some tok.Token.line else None)
            tokens
        in
        Alcotest.(check (option int)) "line of $b" (Some 3) b_line);
    Alcotest.test_case "comments removed by significant" `Quick (fun () ->
        let got = lexemes "<?php // line\n/* block */ # hash\n$x;" in
        Alcotest.(check (list string)) "tokens" [ "<?php"; "$x"; ";" ] got);
    Alcotest.test_case "doc comment kind" `Quick (fun () ->
        let all = Lexer.tokenize "<?php /** doc */ $x;" in
        let has_doc =
          List.exists
            (fun (tok : Token.t) -> tok.Token.kind = Token.T_DOC_COMMENT)
            all
        in
        Alcotest.(check bool) "has doc comment" true has_doc);
    Alcotest.test_case "escaped quote in string" `Quick (fun () ->
        let got = lexemes "<?php 'it\\'s';" in
        Alcotest.(check (list string)) "tokens" [ "<?php"; "'it\\'s'"; ";" ] got);
    Alcotest.test_case "escaped dquote in string" `Quick (fun () ->
        let got = lexemes "<?php \"a\\\"b\";" in
        Alcotest.(check (list string)) "tokens" [ "<?php"; "\"a\\\"b\""; ";" ] got);
    Alcotest.test_case "unterminated string raises" `Quick (fun () ->
        Alcotest.check_raises "error"
          (Lexer.Error ("unterminated single-quoted string", 1))
          (fun () -> ignore (lex "<?php 'oops")));
    Alcotest.test_case "unterminated block comment raises" `Quick (fun () ->
        Alcotest.check_raises "error"
          (Lexer.Error ("unterminated block comment", 1))
          (fun () -> ignore (lex "<?php /* oops")));
    Alcotest.test_case "unexpected char raises" `Quick (fun () ->
        try
          ignore (lex "<?php `cmd`;");
          Alcotest.fail "expected Lexer.Error"
        with Lexer.Error (_, _) -> ());
    Alcotest.test_case "html before open tag" `Quick (fun () ->
        let tokens = lex "<html><?php $x;" in
        match tokens with
        | first :: _ ->
            Alcotest.(check string) "first kind" "T_INLINE_HTML"
              (Token.name first.Token.kind)
        | [] -> Alcotest.fail "no tokens");
    Alcotest.test_case "token_name mirrors PHP" `Quick (fun () ->
        Alcotest.(check string) "variable" "T_VARIABLE"
          (Token.name Token.T_VARIABLE);
        Alcotest.(check string) "paamayim"
          "T_DOUBLE_COLON" (Token.name Token.T_DOUBLE_COLON);
        Alcotest.(check string) "constant string" "T_CONSTANT_ENCAPSED_STRING"
          (Token.name Token.T_CONSTANT_STRING));
    Alcotest.test_case "keyword lookup" `Quick (fun () ->
        Alcotest.(check bool) "foreach" true
          (Token.keyword_kind "FOREACH" = Some Token.T_FOREACH);
        Alcotest.(check bool) "not a keyword" true
          (Token.keyword_kind "foo" = None));
    Alcotest.test_case "close tag eats one newline" `Quick (fun () ->
        let tokens = lex "<?php ?>\nhtml" in
        let html =
          List.find_map
            (fun (tok : Token.t) ->
              if tok.Token.kind = Token.T_INLINE_HTML then Some tok.Token.lexeme
              else None)
            tokens
        in
        Alcotest.(check (option string)) "html content" (Some "html") html);
    Alcotest.test_case "recurring lexemes are interned" `Quick (fun () ->
        (* every repeat of an ident/keyword/variable/whitespace lexeme must
           return the retained first occurrence: physical equality within a
           file, and the lexer.intern.hits counter records each avoided
           allocation *)
        let src = "<?php echo $x; echo $x; echo $x;" in
        Obs.set_enabled true;
        Obs.reset ();
        let tokens = Lexer.tokenize src in
        let snap = Obs.snapshot () in
        Obs.set_enabled false;
        let hits =
          match List.assoc_opt "lexer.intern.hits" snap.Obs.sn_counters with
          | Some n -> n
          | None -> 0
        in
        (* 2 extra "echo", 2 "$x", repeated single-space whitespace: >= 4 *)
        Alcotest.(check bool) "intern hits recorded" true (hits >= 4);
        let lexemes_of kind =
          List.filter_map
            (fun (t : Token.t) ->
              if t.Token.kind = kind then Some t.Token.lexeme else None)
            tokens
        in
        (match lexemes_of Token.T_ECHO with
        | first :: rest ->
            List.iter
              (fun l ->
                Alcotest.(check bool) "echo shares one allocation" true
                  (l == first))
              rest
        | [] -> Alcotest.fail "no echo tokens");
        match lexemes_of Token.T_VARIABLE with
        | first :: rest ->
            List.iter
              (fun l ->
                Alcotest.(check bool) "$x shares one allocation" true
                  (l == first))
              rest
        | [] -> Alcotest.fail "no variable tokens");
  ]

(* heredoc/nowdoc, <?= and ?? — the PHP front-end gap regressions *)
let frontend_cases =
  [
    check_kinds "null coalescing operator" "<?php $a ?? $b;"
      [ t; Token.T_VARIABLE; Token.T_COALESCE; Token.T_VARIABLE; Token.Punct ];
    check_kinds "ternary hook is still punct" "<?php $a ? $b : $c;"
      [ t; Token.T_VARIABLE; Token.Punct; Token.T_VARIABLE; Token.Punct;
        Token.T_VARIABLE; Token.Punct ];
    check_kinds "short echo tag" "<?= $x; ?>"
      [ Token.T_OPEN_TAG_WITH_ECHO; Token.T_VARIABLE; Token.Punct;
        Token.T_CLOSE_TAG ];
    Alcotest.test_case "heredoc lexeme is the raw body" `Quick (fun () ->
        let tokens = lex "<?php $a = <<<EOT\nsay \"hi\" $name\nEOT;\n" in
        let body =
          List.find_map
            (fun (tok : Token.t) ->
              if tok.Token.kind = Token.T_HEREDOC then Some tok.Token.lexeme
              else None)
            tokens
        in
        Alcotest.(check (option string)) "body" (Some "say \"hi\" $name") body);
    Alcotest.test_case "double-quoted label is a heredoc" `Quick (fun () ->
        let tokens = lex "<?php $a = <<<\"EOT\"\nbody\nEOT;\n" in
        let kinds =
          List.filter
            (fun (tok : Token.t) -> tok.Token.kind = Token.T_HEREDOC)
            tokens
        in
        Alcotest.(check int) "one heredoc" 1 (List.length kinds));
    Alcotest.test_case "nowdoc keeps $ verbatim" `Quick (fun () ->
        let tokens = lex "<?php $a = <<<'EOT'\nraw $x body\nEOT;\n" in
        let body =
          List.find_map
            (fun (tok : Token.t) ->
              if tok.Token.kind = Token.T_NOWDOC then Some tok.Token.lexeme
              else None)
            tokens
        in
        Alcotest.(check (option string)) "body" (Some "raw $x body") body);
    Alcotest.test_case "heredoc advances line numbers" `Quick (fun () ->
        let tokens = lex "<?php $a = <<<EOT\nl1\nl2\nEOT;\n$b;" in
        let b_line =
          List.find_map
            (fun (tok : Token.t) ->
              if tok.Token.lexeme = "$b" then Some tok.Token.line else None)
            tokens
        in
        Alcotest.(check (option int)) "line of $b" (Some 5) b_line);
    Alcotest.test_case "unterminated heredoc raises" `Quick (fun () ->
        try
          ignore (lex "<?php $a = <<<EOT\nno close\n");
          Alcotest.fail "expected Lexer.Error"
        with Lexer.Error (_, _) -> ());
  ]

let () =
  Alcotest.run "lexer"
    [ ("token kinds", cases);
      ("numeric literals", number_cases);
      ("positions and edge cases", line_cases);
      ("front-end gaps (heredoc, <?=, ??)", frontend_cases) ]
