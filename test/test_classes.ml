(** E16 class suite: the four new vulnerability classes (cmdi, lfi, ssrf,
    so-sqli) — seed detection, per-class precision/recall floors, the
    two-phase-only reachability of the second-order seeds, and output
    determinism. *)

open Secflow
module Cd = Evalkit.Class_delta

let delta = lazy (Cd.run ())

let case name f = Alcotest.test_case name `Quick f

let check_pct what value =
  Alcotest.(check bool)
    (Printf.sprintf "%s >= 0.9 (got %f)" what value)
    true (value >= 0.9)

let suite_cases =
  [
    case "suite shape: 4 plugins, reals and foils for every class" (fun () ->
        let suite = Corpus.Classes_suite.generate () in
        Alcotest.(check int) "plugins" 4 (List.length suite.Corpus.plugins);
        List.iter
          (fun k ->
            let of_kind p =
              List.filter
                (fun s ->
                  p s && Vuln.equal_kind (Corpus.Gt.kind_of s) k)
                suite.Corpus.seeds
            in
            Alcotest.(check bool)
              (Vuln.kind_spec_name k ^ " has reals")
              true
              (List.length (of_kind Corpus.Gt.is_real) >= 2);
            Alcotest.(check bool)
              (Vuln.kind_spec_name k ^ " has foils")
              true
              (List.length (of_kind (fun s -> not (Corpus.Gt.is_real s))) >= 1))
          Cd.kinds);
    case "suite generation is deterministic" (fun () ->
        let a = Corpus.Classes_suite.generate ()
        and b = Corpus.Classes_suite.generate () in
        Alcotest.(check bool) "equal" true (a = b));
  ]

let e16_cases =
  [
    case "phpSAFE two-phase: >=90% precision and recall per class" (fun () ->
        let t = Lazy.force delta in
        let v = Cd.variant_for t Cd.so_variant_name in
        List.iter
          (fun k ->
            let m = Cd.metrics_for_kind v k in
            let name = Vuln.kind_spec_name k in
            check_pct (name ^ " precision") (Evalkit.Metrics.precision m);
            check_pct (name ^ " recall") (Evalkit.Metrics.recall m))
          Cd.kinds);
    case "phpSAFE two-phase: no stray findings on the class suite" (fun () ->
        let t = Lazy.force delta in
        let v = Cd.variant_for t Cd.so_variant_name in
        Alcotest.(check int) "stray" 0
          (List.length v.Cd.cv_classified.Evalkit.Matching.cl_stray_fp));
    case "second-order seeds are reachable only via the two-phase pass"
      (fun () ->
        let t = Lazy.force delta in
        Alcotest.(check bool) "so-only-two-phase" true t.Cd.cd_so_only_two_phase;
        let flat = Cd.variant_for t Cd.flat_variant_name in
        let m = Cd.metrics_for_kind flat Vuln.Second_order_sqli in
        Alcotest.(check int) "flat finds none" 0 m.Evalkit.Metrics.tp);
    case "single-pass phpSAFE still finds every first-order seed" (fun () ->
        let t = Lazy.force delta in
        let flat = Cd.variant_for t Cd.flat_variant_name in
        List.iter
          (fun k ->
            let m = Cd.metrics_for_kind flat k in
            Alcotest.(check int)
              (Vuln.kind_spec_name k ^ " FN only so-sqli")
              (match k with Vuln.Second_order_sqli -> 3 | _ -> 0)
              m.Evalkit.Metrics.fn)
          Cd.kinds);
    case "RIPS: finds cmdi/lfi builtins, blind to ssrf and so-sqli" (fun () ->
        let t = Lazy.force delta in
        let rips =
          List.find
            (fun (v : Cd.variant) ->
              v.Cd.cv_name <> Cd.so_variant_name
              && v.Cd.cv_name <> Cd.flat_variant_name
              && v.Cd.cv_name <> "Pixy")
            t.Cd.cd_variants
        in
        Alcotest.(check bool) "some cmdi" true
          ((Cd.metrics_for_kind rips Vuln.Cmdi).Evalkit.Metrics.tp > 0);
        Alcotest.(check bool) "some lfi" true
          ((Cd.metrics_for_kind rips Vuln.Path_traversal).Evalkit.Metrics.tp > 0);
        Alcotest.(check int) "no ssrf" 0
          (Cd.metrics_for_kind rips Vuln.Ssrf).Evalkit.Metrics.tp;
        Alcotest.(check int) "no so-sqli" 0
          (Cd.metrics_for_kind rips Vuln.Second_order_sqli).Evalkit.Metrics.tp);
    case "Pixy: blind to every new class" (fun () ->
        let t = Lazy.force delta in
        let pixy =
          List.find (fun (v : Cd.variant) -> v.Cd.cv_name = "Pixy")
            t.Cd.cd_variants
        in
        List.iter
          (fun k ->
            Alcotest.(check int)
              (Vuln.kind_spec_name k ^ " tp")
              0
              (Cd.metrics_for_kind pixy k).Evalkit.Metrics.tp)
          Cd.kinds);
    case "E16 table is deterministic across runs" (fun () ->
        let render t = Format.asprintf "%a" Cd.print t in
        Alcotest.(check string) "same table" (render (Lazy.force delta))
          (render (Cd.run ())));
  ]

let () =
  Alcotest.run "classes"
    [ ("class suite", suite_cases); ("E16 per-class metrics", e16_cases) ]
