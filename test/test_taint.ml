(** Taint lattice tests: unit laws for sources, sanitize, revert and the
    dependency machinery, plus QCheck algebraic properties of [join]. *)

open Secflow
module T = Phpsafe.Taint

let pos = Phplang.Ast.dummy_pos
let xss_src = T.of_source ~kinds:[ Vuln.Xss ] ~source:(Vuln.Superglobal "$_GET") ~pos
let both_src =
  T.of_source ~kinds:[ Vuln.Xss; Vuln.Sqli ] ~source:(Vuln.Superglobal "$_POST") ~pos

let unit_cases =
  [
    Alcotest.test_case "untainted is clean" `Quick (fun () ->
        Alcotest.(check bool) "xss" false (T.is_tainted Vuln.Xss T.untainted);
        Alcotest.(check bool) "sqli" false (T.is_tainted Vuln.Sqli T.untainted);
        Alcotest.(check bool) "not interesting" false (T.interesting T.untainted));
    Alcotest.test_case "source taints its kinds only" `Quick (fun () ->
        Alcotest.(check bool) "xss" true (T.is_tainted Vuln.Xss xss_src);
        Alcotest.(check bool) "sqli" false (T.is_tainted Vuln.Sqli xss_src));
    Alcotest.test_case "sanitize clears a kind" `Quick (fun () ->
        let t = T.sanitize Vuln.Xss both_src in
        Alcotest.(check bool) "xss off" false (T.is_tainted Vuln.Xss t);
        Alcotest.(check bool) "sqli kept" true (T.is_tainted Vuln.Sqli t));
    Alcotest.test_case "revert restores sanitized taint" `Quick (fun () ->
        let t = T.revert (T.sanitize Vuln.Xss xss_src) in
        Alcotest.(check bool) "xss back" true (T.is_tainted Vuln.Xss t));
    Alcotest.test_case "revert on never-tainted is a no-op" `Quick (fun () ->
        let t = T.revert T.untainted in
        Alcotest.(check bool) "still clean" false (T.any_tainted t));
    Alcotest.test_case "sanitize both kinds" `Quick (fun () ->
        let t = T.sanitize_kinds [ Vuln.Xss; Vuln.Sqli ] both_src in
        Alcotest.(check bool) "clean" false (T.any_tainted t);
        let r = T.revert t in
        Alcotest.(check bool) "revert restores both" true
          (T.is_tainted Vuln.Xss r && T.is_tainted Vuln.Sqli r));
    Alcotest.test_case "scrub drops everything" `Quick (fun () ->
        let t = T.scrub both_src in
        Alcotest.(check bool) "clean" false (T.interesting t));
    Alcotest.test_case "param deps flow through join" `Quick (fun () ->
        let t = T.join (T.of_param 0) (T.of_param 2) in
        Alcotest.(check int) "two deps" 2 (T.Int_set.cardinal (T.deps Vuln.Xss t));
        Alcotest.(check bool) "interesting" true (T.interesting t);
        Alcotest.(check bool) "not concretely tainted" false (T.any_tainted t));
    Alcotest.test_case "sanitize clears deps for that kind" `Quick (fun () ->
        let t = T.sanitize Vuln.Xss (T.of_param 1) in
        Alcotest.(check bool) "xss deps gone" true
          (T.Int_set.is_empty (T.deps Vuln.Xss t));
        Alcotest.(check bool) "sqli deps kept" false
          (T.Int_set.is_empty (T.deps Vuln.Sqli t)));
    Alcotest.test_case "revert restores deps" `Quick (fun () ->
        let t = T.revert (T.sanitize Vuln.Xss (T.of_param 1)) in
        Alcotest.(check bool) "deps back" false
          (T.Int_set.is_empty (T.deps Vuln.Xss t)));
    Alcotest.test_case "join keeps first source" `Quick (fun () ->
        let j = T.join xss_src both_src in
        let src, _ = T.source_of j in
        Alcotest.(check string) "source" "$_GET" (Vuln.source_to_string src));
    Alcotest.test_case "trace is bounded" `Quick (fun () ->
        let t = ref xss_src in
        for i = 1 to 50 do
          t := T.push_step !t ~var:(Printf.sprintf "$v%d" i) ~pos ~note:"hop"
        done;
        Alcotest.(check bool) "bounded" true
          (List.length !t.T.trace <= T.max_trace_len));
    Alcotest.test_case "truncation is marked, not silent" `Quick (fun () ->
        let t = ref xss_src in
        for i = 1 to T.max_trace_len + 5 do
          t := T.push_step !t ~var:(Printf.sprintf "$v%d" i) ~pos ~note:"hop"
        done;
        Alcotest.(check bool) "flag set at the cap" true !t.T.trace_truncated;
        let short =
          T.push_step xss_src ~var:"$v" ~pos ~note:"hop"
        in
        Alcotest.(check bool) "short trace unflagged" false
          short.T.trace_truncated);
    Alcotest.test_case "join carries the truncation flag with the trace" `Quick
      (fun () ->
        let long = ref xss_src in
        for i = 1 to T.max_trace_len + 1 do
          long := T.push_step !long ~var:(Printf.sprintf "$v%d" i) ~pos ~note:"hop"
        done;
        let j = T.join !long T.untainted in
        Alcotest.(check bool) "tainted side leads" true j.T.trace_truncated);
  ]

(* -- sanitizer-set tracking (context pass, --contexts) --------------- *)

let names set = T.San_set.elements set

(* [sans]-level applied set for one kind (the record stores a Kmap). *)
let sans_applied k (s : T.sans) =
  match T.Kmap.find_opt k s.T.applied with
  | Some set -> set
  | None -> T.San_set.empty

let sans_cases =
  [
    Alcotest.test_case "record_sanitizer keeps taint live" `Quick (fun () ->
        let t = T.record_sanitizer ~name:"htmlspecialchars" [ Vuln.Xss ] xss_src in
        Alcotest.(check bool) "still live" true (T.is_tainted Vuln.Xss t);
        Alcotest.(check (list string)) "applied xss" [ "htmlspecialchars" ]
          (names (T.applied Vuln.Xss t));
        Alcotest.(check (list string)) "sqli untouched" []
          (names (T.applied Vuln.Sqli t)));
    Alcotest.test_case "revert_named removes exactly the named set" `Quick
      (fun () ->
        let t =
          both_src
          |> T.record_sanitizer ~name:"htmlspecialchars" [ Vuln.Xss ]
          |> T.record_sanitizer ~name:"addslashes" [ Vuln.Sqli ]
          |> T.revert_named ~undoes:(`Named [ "addslashes"; "esc_sql" ])
        in
        Alcotest.(check (list string)) "xss applied survives"
          [ "htmlspecialchars" ]
          (names (T.applied Vuln.Xss t));
        Alcotest.(check (list string)) "sqli applied cleared" []
          (names (T.applied Vuln.Sqli t)));
    Alcotest.test_case "revert_named `All clears every applied set" `Quick
      (fun () ->
        let t =
          both_src
          |> T.record_sanitizer ~name:"htmlspecialchars" [ Vuln.Xss ]
          |> T.record_sanitizer ~name:"addslashes" [ Vuln.Sqli ]
          |> T.revert_named ~undoes:`All
        in
        Alcotest.(check (list string)) "xss empty" []
          (names (T.applied Vuln.Xss t));
        Alcotest.(check (list string)) "sqli empty" []
          (names (T.applied Vuln.Sqli t));
        Alcotest.(check bool) "undone_all" true t.T.sans.T.undone_all);
    Alcotest.test_case "compose_sans replays the callee delta" `Quick
      (fun () ->
        (* caller arg passed through htmlspecialchars; callee stripslashed it
           and applied intval *)
        let outer =
          (T.record_sanitizer ~name:"htmlspecialchars" [ Vuln.Xss ] xss_src)
            .T.sans
        in
        let inner =
          (T.of_param 0
          |> T.revert_named ~undoes:(`Named [ "htmlspecialchars" ])
          |> T.record_sanitizer ~name:"intval" [ Vuln.Xss ])
            .T.sans
        in
        let composed = T.compose_sans ~outer ~inner in
        Alcotest.(check (list string)) "stripped then applied" [ "intval" ]
          (T.San_set.elements (sans_applied Vuln.Xss composed)));
    Alcotest.test_case "compose_sans with undone_all strips everything" `Quick
      (fun () ->
        let outer =
          (T.record_sanitizer ~name:"htmlspecialchars" [ Vuln.Xss ] xss_src)
            .T.sans
        in
        let inner = (T.revert_named ~undoes:`All (T.of_param 0)).T.sans in
        let composed = T.compose_sans ~outer ~inner in
        Alcotest.(check (list string)) "empty" []
          (T.San_set.elements (sans_applied Vuln.Xss composed)));
    Alcotest.test_case "join intersects applied sets of relevant sides" `Quick
      (fun () ->
        let a =
          xss_src
          |> T.record_sanitizer ~name:"htmlspecialchars" [ Vuln.Xss ]
          |> T.record_sanitizer ~name:"intval" [ Vuln.Xss ]
        in
        let b = T.record_sanitizer ~name:"intval" [ Vuln.Xss ] xss_src in
        Alcotest.(check (list string)) "intersection" [ "intval" ]
          (names (T.applied Vuln.Xss (T.join a b))));
    Alcotest.test_case "join ignores an irrelevant side's empty set" `Quick
      (fun () ->
        let a = T.record_sanitizer ~name:"htmlspecialchars" [ Vuln.Xss ] xss_src in
        Alcotest.(check (list string)) "kept" [ "htmlspecialchars" ]
          (names (T.applied Vuln.Xss (T.join a T.untainted)));
        Alcotest.(check (list string)) "kept (sym)" [ "htmlspecialchars" ]
          (names (T.applied Vuln.Xss (T.join T.untainted a))));
  ]

(* -- QCheck: join is a semilattice on the flag component ------------- *)

open QCheck2

let gen_taint : T.t Gen.t =
  let open Gen in
  let* xss = bool and* sqli = bool and* wx = bool and* ws = bool in
  let* d1 = int_bound 3 and* d2 = int_bound 3 in
  let* sanitized = bool in
  let comp live was dep =
    { T.live; was; deps = T.Int_set.singleton dep; was_deps = T.Int_set.empty }
  in
  let comps =
    T.Kmap.empty
    |> T.Kmap.add Vuln.Xss (comp xss wx d1)
    |> T.Kmap.add Vuln.Sqli (comp sqli ws d2)
  in
  let base = { T.untainted with T.comps } in
  return (if sanitized then T.sanitize Vuln.Xss base else base)

let flags t =
  let cx = T.comp Vuln.Xss t and cs = T.comp Vuln.Sqli t in
  ( cx.T.live, cs.T.live, cx.T.was, cs.T.was,
    T.Int_set.elements cx.T.deps, T.Int_set.elements cs.T.deps )

let props =
  [
    Test.make ~name:"join commutes (flags)" ~count:300
      (Gen.pair gen_taint gen_taint)
      (fun (a, b) -> flags (T.join a b) = flags (T.join b a));
    Test.make ~name:"join associates (flags)" ~count:300
      (Gen.triple gen_taint gen_taint gen_taint)
      (fun (a, b, c) ->
        flags (T.join a (T.join b c)) = flags (T.join (T.join a b) c));
    Test.make ~name:"join is idempotent" ~count:300 gen_taint (fun a ->
        flags (T.join a a) = flags a);
    Test.make ~name:"untainted is identity for join" ~count:300 gen_taint
      (fun a -> flags (T.join a T.untainted) = flags a);
    Test.make ~name:"sanitize then revert restores live taint" ~count:300
      gen_taint (fun a ->
        let restored = T.revert (T.sanitize Vuln.Xss a) in
        (* revert may only grow the taint: everything live before is live after *)
        (not (T.is_tainted Vuln.Xss a)) || T.is_tainted Vuln.Xss restored);
    Test.make ~name:"sanitize is idempotent" ~count:300 gen_taint (fun a ->
        flags (T.sanitize Vuln.Xss (T.sanitize Vuln.Xss a))
        = flags (T.sanitize Vuln.Xss a));
    Test.make ~name:"join monotone wrt taintedness" ~count:300
      (Gen.pair gen_taint gen_taint)
      (fun (a, b) ->
        let j = T.join a b in
        (T.is_tainted Vuln.Xss a || T.is_tainted Vuln.Xss b)
        = T.is_tainted Vuln.Xss j);
  ]

let () =
  Alcotest.run "taint"
    [ ("laws", unit_cases);
      ("sanitizer sets (--contexts)", sans_cases);
      ("qcheck semilattice", List.map QCheck_alcotest.to_alcotest props) ]
