(** Parser unit tests: statement/expression coverage, PHP operator
    precedence, string interpolation expansion, class parsing and error
    reporting. *)

open Phplang

let parse src = Parser.parse_source ~file:"t.php" src
let pe src = Parser.expr_of_string src

(* compare via the printer so failures are readable *)
let expr_str = Alcotest.testable Fmt.string String.equal

let check_expr name src expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.check expr_str name expected (Printer.expr_to_string (pe src)))

let check_stmt name src expected =
  Alcotest.test_case name `Quick (fun () ->
      match parse ("<?php " ^ src) with
      | [ stmt ] ->
          Alcotest.check expr_str name expected
            (String.trim (Printer.stmt_to_string stmt))
      | stmts ->
          Alcotest.failf "%s: expected 1 statement, got %d" name
            (List.length stmts))

let precedence_cases =
  [
    (* PHP's classic low-precedence logical keywords: `$a = $b or die()`
       parses as `($a = $b) or die()` *)
    Alcotest.test_case "assignment binds tighter than `or`" `Quick (fun () ->
        match (pe "$a = $b or exit").Ast.e with
        | Ast.Bin (Ast.BoolOr, { Ast.e = Ast.Assign _; _ }, { Ast.e = Ast.Exit None; _ }) ->
            ()
        | _ -> Alcotest.fail "expected (assign) or (exit)");
    Alcotest.test_case "assignment binds tighter than `and`" `Quick (fun () ->
        match (pe "$ok = f() and g()").Ast.e with
        | Ast.Bin (Ast.BoolAnd, { Ast.e = Ast.Assign _; _ }, { Ast.e = Ast.Call ("g", []); _ }) ->
            ()
        | _ -> Alcotest.fail "expected (assign) and (call)");
    Alcotest.test_case "|| binds tighter than assignment" `Quick (fun () ->
        match (pe "$a = $b || $c").Ast.e with
        | Ast.Assign (_, { Ast.e = Ast.Bin (Ast.BoolOr, _, _); _ }) -> ()
        | _ -> Alcotest.fail "expected assign of (or)");
    check_expr "concat binds tighter than comparison" "$a . $b == $c"
      "$a . $b == $c";
    check_expr "mul before add" "1 + 2 * 3" "1 + 2 * 3";
    check_expr "explicit parens preserved where needed" "(1 + 2) * 3"
      "(1 + 2) * 3";
    check_expr "assignment is right-associative" "$a = $b = 1" "$a = $b = 1";
    check_expr "ternary" "$a ? 1 : 2" "$a ? 1 : 2";
    check_expr "elvis" "$a ?: 2" "$a ?: 2";
    check_expr "boolean and/or precedence" "$a || $b && $c" "$a || $b && $c";
    check_expr "not binds tight" "!$a && $b" "!$a && $b";
    check_expr "unary minus" "-$a + $b" "-$a + $b";
    check_expr "postfix chain" "$a->b->c" "$a->b->c";
    check_expr "method then index" "$a->b('x')[0]" "$a->b('x')[0]";
    check_expr "cast then concat" "(int) $a . $b" "(int) $a . $b";
    check_expr "silence operator" "@$a" "@$a";
    check_expr "array get on call result" "f()[1]" "f()[1]";
  ]

let check_parses name src =
  Alcotest.test_case name `Quick (fun () -> ignore (parse src))

let ast_cases =
  [
    check_stmt "echo multiple" "echo $a, $b;" "echo $a, $b;";
    check_stmt "if elseif else" "if ($a) { f(); } elseif ($b) { g(); } else { h(); }"
      "if ($a) {\n    f();\n} elseif ($b) {\n    g();\n} else {\n    h();\n}";
    check_stmt "else-if normalized to elseif"
      "if ($a) { f(); } else if ($b) { g(); }"
      "if ($a) {\n    f();\n} elseif ($b) {\n    g();\n}";
    check_stmt "while" "while ($a) { f(); }" "while ($a) {\n    f();\n}";
    check_stmt "do while" "do { f(); } while ($a);"
      "do {\n    f();\n} while ($a);";
    check_stmt "for" "for ($i = 0; $i < 5; $i++) { f(); }"
      "for ($i = 0; $i < 5; $i++) {\n    f();\n}";
    check_stmt "foreach value" "foreach ($a as $v) { f(); }"
      "foreach ($a as $v) {\n    f();\n}";
    check_stmt "foreach key value" "foreach ($a as $k => $v) { f(); }"
      "foreach ($a as $k => $v) {\n    f();\n}";
    check_stmt "global" "global $wpdb, $post;" "global $wpdb, $post;";
    check_stmt "static vars" "static $n = 0;" "static $n = 0;";
    check_stmt "unset" "unset($a, $b);" "unset($a, $b);";
    check_stmt "return value" "return $a . $b;" "return $a . $b;";
    check_stmt "throw" "throw new Exception('x');" "throw new Exception('x');";
    check_stmt "single-stmt if body" "if ($a) f();" "if ($a) {\n    f();\n}";
    check_parses "switch with cases and default"
      "<?php switch ($a) { case 1: f(); break; case 2: g(); break; default: h(); }";
    check_parses "try catch" "<?php try { f(); } catch (Exception $e) { g(); }";
    check_parses "closure with use"
      "<?php $f = function($a) use ($b, &$c) { return $a; };";
    check_parses "list assignment" "<?php list($a, , $b) = f();";
    check_parses "include family"
      "<?php include 'a.php'; include_once 'b.php'; require 'c.php'; require_once 'd.php';";
    check_parses "exit variants" "<?php exit; exit(); exit(1); die('x');";
    check_parses "by-ref param and call" "<?php function f(&$x) {} f(&$y);";
    check_parses "default params" "<?php function f($a = 1, $b = array()) {}";
    check_parses "type-hinted param" "<?php function f(WP_Widget $w, array $a) {}";
    check_parses "reference assignment" "<?php $a =& $b;";
    check_parses "nested function declarations"
      "<?php function outer() { function inner() { return 1; } }";
    check_parses "statement ends at close tag" "<?php echo $a ?>";
  ]

let interp_cases =
  [
    Alcotest.test_case "simple $var interpolation" `Quick (fun () ->
        match (pe "\"a $x b\"").Ast.e with
        | Ast.Interp [ Ast.ILit "a "; Ast.IExpr { Ast.e = Ast.Var "$x"; _ };
                       Ast.ILit " b" ] ->
            ()
        | _ -> Alcotest.fail "unexpected interp structure");
    Alcotest.test_case "property interpolation" `Quick (fun () ->
        match (pe "\"$obj->name\"").Ast.e with
        | Ast.Interp [ Ast.IExpr { Ast.e = Ast.Prop ({ Ast.e = Ast.Var "$obj"; _ }, "name"); _ } ] ->
            ()
        | _ -> Alcotest.fail "unexpected structure");
    Alcotest.test_case "array key interpolation" `Quick (fun () ->
        match (pe "\"$a[key]\"").Ast.e with
        | Ast.Interp
            [ Ast.IExpr
                { Ast.e = Ast.ArrayGet ({ Ast.e = Ast.Var "$a"; _ },
                                        Some { Ast.e = Ast.Str "key"; _ }); _ } ] ->
            ()
        | _ -> Alcotest.fail "unexpected structure");
    Alcotest.test_case "braced expression interpolation" `Quick (fun () ->
        match (pe "\"x{$wpdb->prefix}y\"").Ast.e with
        | Ast.Interp
            [ Ast.ILit "x";
              Ast.IExpr { Ast.e = Ast.Prop ({ Ast.e = Ast.Var "$wpdb"; _ }, "prefix"); _ };
              Ast.ILit "y" ] ->
            ()
        | _ -> Alcotest.fail "unexpected structure");
    Alcotest.test_case "no interpolation folds to Str" `Quick (fun () ->
        match (pe "\"plain\"").Ast.e with
        | Ast.Str "plain" -> ()
        | _ -> Alcotest.fail "expected Str");
    Alcotest.test_case "escapes decoded" `Quick (fun () ->
        match (pe "\"a\\n\\t\\\"\\$b\"").Ast.e with
        | Ast.Str "a\n\t\"$b" -> ()
        | _ -> Alcotest.fail "expected decoded Str");
    Alcotest.test_case "single-quote escapes" `Quick (fun () ->
        match (pe "'it\\'s \\\\'").Ast.e with
        | Ast.Str "it's \\" -> ()
        | _ -> Alcotest.fail "expected decoded Str");
  ]

let class_cases =
  [
    Alcotest.test_case "class structure" `Quick (fun () ->
        let src =
          "<?php class A extends B implements C, D {\n\
           const K = 1;\n\
           public $p = 'x';\n\
           private static $q;\n\
           public function m($a) { return $a; }\n\
           protected static function n() {}\n\
           }"
        in
        match parse src with
        | [ { Ast.s = Ast.ClassDef c; _ } ] ->
            Alcotest.(check string) "name" "A" c.Ast.c_name;
            Alcotest.(check (option string)) "parent" (Some "B") c.Ast.c_parent;
            Alcotest.(check (list string)) "implements" [ "C"; "D" ] c.Ast.c_implements;
            Alcotest.(check int) "consts" 1 (List.length c.Ast.c_consts);
            Alcotest.(check int) "props" 2 (List.length c.Ast.c_props);
            Alcotest.(check int) "methods" 2 (List.length c.Ast.c_methods);
            let m = List.hd c.Ast.c_methods in
            Alcotest.(check bool) "m not static" false m.Ast.m_static;
            let n = List.nth c.Ast.c_methods 1 in
            Alcotest.(check bool) "n static" true n.Ast.m_static
        | _ -> Alcotest.fail "expected a single class");
    Alcotest.test_case "var keyword means public" `Quick (fun () ->
        match parse "<?php class A { var $x; }" with
        | [ { Ast.s = Ast.ClassDef c; _ } ] ->
            let p = List.hd c.Ast.c_props in
            Alcotest.(check bool) "public" true (p.Ast.pr_vis = Ast.Public)
        | _ -> Alcotest.fail "expected class");
    Alcotest.test_case "interface methods have empty bodies" `Quick (fun () ->
        match parse "<?php interface I { public function f($a); }" with
        | [ { Ast.s = Ast.ClassDef c; _ } ] ->
            let m = List.hd c.Ast.c_methods in
            Alcotest.(check int) "empty body" 0 (List.length m.Ast.m_func.Ast.f_body)
        | _ -> Alcotest.fail "expected interface-as-class");
    Alcotest.test_case "new without parens" `Quick (fun () ->
        match (pe "new Foo").Ast.e with
        | Ast.New ("Foo", []) -> ()
        | _ -> Alcotest.fail "expected New");
  ]

let error_cases =
  [
    Alcotest.test_case "missing semicolon" `Quick (fun () ->
        try
          ignore (parse "<?php $a = 1 $b = 2;");
          Alcotest.fail "expected Parse_error"
        with Parser.Parse_error (_, _) -> ());
    Alcotest.test_case "unclosed brace" `Quick (fun () ->
        try
          ignore (parse "<?php function f() { echo 1;");
          Alcotest.fail "expected Parse_error"
        with Parser.Parse_error (_, _) -> ());
    Alcotest.test_case "error carries position" `Quick (fun () ->
        try ignore (parse "<?php\n\n$a = ;")
        with Parser.Parse_error (_, pos) ->
          Alcotest.(check int) "line" 3 pos.Ast.line);
    Alcotest.test_case "positions recorded on statements" `Quick (fun () ->
        match parse "<?php\necho $a;\n$b = 1;" with
        | [ s1; s2 ] ->
            Alcotest.(check int) "echo line" 2 s1.Ast.spos.Ast.line;
            Alcotest.(check int) "assign line" 3 s2.Ast.spos.Ast.line
        | _ -> Alcotest.fail "expected 2 statements");
  ]

(* heredoc/nowdoc, <?= and ?? — the PHP front-end gap regressions *)
let frontend_cases =
  [
    check_expr "null coalescing round-trips" "$a ?? $b" "$a ?? $b";
    Alcotest.test_case "?? is right-associative" `Quick (fun () ->
        match (pe "$a ?? $b ?? $c").Ast.e with
        | Ast.Bin
            ( Ast.Coalesce,
              { Ast.e = Ast.Var "$a"; _ },
              { Ast.e = Ast.Bin (Ast.Coalesce, _, _); _ } ) ->
            ()
        | _ -> Alcotest.fail "expected $a ?? ($b ?? $c)");
    check_expr "left-nested ?? keeps its parens" "($a ?? $b) ?? $c"
      "($a ?? $b) ?? $c";
    Alcotest.test_case "|| binds tighter than ??" `Quick (fun () ->
        match (pe "$a || $b ?? $c").Ast.e with
        | Ast.Bin
            ( Ast.Coalesce,
              { Ast.e = Ast.Bin (Ast.BoolOr, _, _); _ },
              { Ast.e = Ast.Var "$c"; _ } ) ->
            ()
        | _ -> Alcotest.fail "expected ($a || $b) ?? $c");
    Alcotest.test_case "?? binds tighter than ternary" `Quick (fun () ->
        match (pe "$a ?? $b ? 'x' : 'y'").Ast.e with
        | Ast.Ternary ({ Ast.e = Ast.Bin (Ast.Coalesce, _, _); _ }, Some _, _) ->
            ()
        | _ -> Alcotest.fail "expected ($a ?? $b) ? 'x' : 'y'");
    check_expr "elvis still parses next to ??" "$a ?: $b ?? $c"
      "$a ?: $b ?? $c";
    Alcotest.test_case "heredoc interpolates like a dquoted body" `Quick
      (fun () ->
        match parse "<?php $a = <<<EOT\nhello $n!\nEOT;\n" with
        | [ { Ast.s =
                Ast.Expr
                  { Ast.e =
                      Ast.Assign
                        ( _,
                          { Ast.e =
                              Ast.Interp
                                [ Ast.ILit "hello ";
                                  Ast.IExpr { Ast.e = Ast.Var "$n"; _ };
                                  Ast.ILit "!" ];
                            _ } );
                    _ };
              _ } ] ->
            ()
        | _ -> Alcotest.fail "unexpected heredoc structure");
    Alcotest.test_case "plain heredoc folds to Str" `Quick (fun () ->
        match parse "<?php $a = <<<EOT\njust text\nEOT;\n" with
        | [ { Ast.s =
                Ast.Expr
                  { Ast.e = Ast.Assign (_, { Ast.e = Ast.Str "just text"; _ });
                    _ };
              _ } ] ->
            ()
        | _ -> Alcotest.fail "expected Str");
    Alcotest.test_case "nowdoc never interpolates" `Quick (fun () ->
        match parse "<?php $a = <<<'EOT'\nraw $x\nEOT;\n" with
        | [ { Ast.s =
                Ast.Expr
                  { Ast.e = Ast.Assign (_, { Ast.e = Ast.Str "raw $x"; _ }); _ };
              _ } ] ->
            ()
        | _ -> Alcotest.fail "expected verbatim Str");
    Alcotest.test_case "<?= is an echo statement" `Quick (fun () ->
        (* the trailing ?> contributes an (empty) inline-html statement *)
        match parse "<?= $x ?>" with
        | { Ast.s = Ast.Echo [ { Ast.e = Ast.Var "$x"; _ } ]; _ } :: rest
          when List.for_all
                 (fun (s : Ast.stmt) ->
                   match s.Ast.s with Ast.InlineHtml _ -> true | _ -> false)
                 rest ->
            ()
        | _ -> Alcotest.fail "expected echo of $x");
    Alcotest.test_case "<?= after html keeps both" `Quick (fun () ->
        match parse "<b><?= $x; ?></b>" with
        | [ { Ast.s = Ast.InlineHtml "<b>"; _ };
            { Ast.s = Ast.Echo [ { Ast.e = Ast.Var "$x"; _ } ]; _ };
            { Ast.s = Ast.InlineHtml "</b>"; _ } ] ->
            ()
        | _ -> Alcotest.fail "expected html / echo / html");
  ]

let () =
  Alcotest.run "parser"
    [ ("precedence", precedence_cases);
      ("statements", ast_cases);
      ("interpolation", interp_cases);
      ("classes", class_cases);
      ("errors and positions", error_cases);
      ("front-end gaps (heredoc, <?=, ??)", frontend_cases) ]
