(** Sub-file incremental re-analysis: checkpointed relexing and region
    re-parse must be byte-identical to a cold lex/parse after every edit,
    including the nasty front-end cases (heredoc bodies, unterminated
    strings, [<?=] blocks, edits straddling two definitions), with the
    fallback paths exercised and counted. *)

open Phplang

(* ------------------------------------------------------------------ *)
(* Relex equivalence                                                  *)
(* ------------------------------------------------------------------ *)

let token_list (l : Lexer.lexed) =
  Array.to_list l.Lexer.lx_tokens
  |> List.map (fun (t : Token.t) ->
         Printf.sprintf "%s|%s|%d" (Token.name t.Token.kind) t.Token.lexeme
           t.Token.line)

let check_relex name old_src new_src =
  Alcotest.test_case name `Quick (fun () ->
      let old = Lexer.lex_all old_src in
      let fresh = Lexer.lex_all new_src in
      let incr, _info = Lexer.relex old new_src in
      Alcotest.(check (list string))
        "relex tokens = cold tokens" (token_list fresh) (token_list incr);
      Alcotest.(check string) "source recorded" new_src incr.Lexer.lx_src;
      (* starts must tile the new source *)
      let n = Array.length incr.Lexer.lx_tokens in
      Alcotest.(check int)
        "eof start" (String.length new_src)
        incr.Lexer.lx_starts.(n - 1))

let check_relex_error name old_src new_src =
  Alcotest.test_case name `Quick (fun () ->
      let old = Lexer.lex_all old_src in
      let cold =
        match Lexer.lex_all new_src with
        | exception Lexer.Error (m, l) -> Some (m, l)
        | _ -> None
      in
      let incr =
        match Lexer.relex old new_src with
        | exception Lexer.Error (m, l) -> Some (m, l)
        | _ -> None
      in
      Alcotest.(check (option (pair string int)))
        "relex error = cold error" cold incr)

let big_src =
  let b = Buffer.create 4096 in
  Buffer.add_string b "<?php\n";
  for i = 0 to 60 do
    Buffer.add_string b
      (Printf.sprintf
         "function fn%d($a) {\n  $x = $a . 'suffix%d';\n  return $x;\n}\n" i i)
  done;
  Buffer.contents b

let edit ~at ~drop ~insert src =
  String.sub src 0 at ^ insert
  ^ String.sub src (at + drop) (String.length src - at - drop)

let relex_cases =
  [
    check_relex "single char change"
      "<?php $a = 1; $b = 2; $c = 3;"
      "<?php $a = 1; $b = 9; $c = 3;";
    check_relex "insertion grows token"
      "<?php $abc = 5;" "<?php $abcdef = 5;";
    check_relex "deletion" "<?php $aa = 11 + 22;" "<?php $aa = 1 + 22;";
    check_relex "number exponent grows backward"
      "<?php $x = 5; $y = 2;" "<?php $x = 5e3; $y = 2;"
      (* "5" then "e3" must relex as one T_DNUMBER *);
    check_relex "exponent removed" "<?php $x = 5e3;" "<?php $x = 5;";
    check_relex "newline insertion shifts lines"
      "<?php $a = 1;\n$b = 2;\n$c = 3;\n"
      "<?php $a = 1;\n\n\n$b = 2;\n$c = 3;\n";
    check_relex "newline removal"
      "<?php $a = 1;\n\n$b = 2;\n" "<?php $a = 1;\n$b = 2;\n";
    check_relex "heredoc body edit"
      "<?php $a = 1;\n$s = <<<EOT\nhello world\nEOT;\n$b = 2;\n"
      "<?php $a = 1;\n$s = <<<EOT\nhello brave world\nEOT;\n$b = 2;\n";
    check_relex "nowdoc body edit"
      "<?php $s = <<<'EOT'\nraw $body\nEOT;\n$b = 2;\n"
      "<?php $s = <<<'EOT'\nraw $content\nEOT;\n$b = 2;\n";
    check_relex "heredoc label edit changes extent"
      "<?php $s = <<<EOT\nx\nEOT;\n$t = <<<EOT\ny\nEOT;\n"
      "<?php $s = <<<EOD\nx\nEOT;\ny\nEOD;\n$u = 1;\n";
    check_relex "edit before heredoc"
      "<?php $a = 1;\n$s = <<<EOT\nbody line\nEOT;\n"
      "<?php $a = 42;\n$s = <<<EOT\nbody line\nEOT;\n";
    check_relex "open short echo tag"
      "<html><?= $x ?></html>" "<html><?= $y ?></html>";
    check_relex "html to php transition edit"
      "<p>text</p><?php $a = 1;" "<p>more text</p><?php $a = 1;";
    check_relex "close then reopen"
      "<?php $a = 1; ?><b><?php $c = 2;"
      "<?php $a = 1; ?><strong><?php $c = 2;";
    check_relex "string closed"
      "<?php $s = 'abc'; $t = 1;" "<?php $s = 'abcd'; $t = 1;";
    check_relex "comment edit"
      "<?php // note\n$a = 1;" "<?php // longer note\n$a = 1;";
    check_relex "block comment edit"
      "<?php /* a */ $a = 1;" "<?php /* bb */ $a = 1;";
    check_relex "cast appears at distance"
      "<?php $x = (          strin) ;" "<?php $x = (          string) ;";
    check_relex "cast destroyed at distance"
      "<?php $x = (          string) ;" "<?php $x = (          strin) ;";
    check_relex "edit near start" "<?php $a = 1;" "<?pHp $a = 1;";
    check_relex "edit at very end" "<?php $a = 1;" "<?php $a = 12;";
    check_relex "big file middle edit" big_src
      (edit ~at:(String.length big_src / 2) ~drop:1 ~insert:"X" big_src);
    check_relex_error "edit opens unterminated string"
      "<?php $s = 'ok'; $t = 2;" "<?php $s = ok'; $t = 2;";
    check_relex_error "unterminated block comment"
      "<?php /* c */ $a = 1;" "<?php /* c * $a = 1;";
  ]

(* the error case must also recover: closing the string again re-lexes *)
let recovery_case =
  Alcotest.test_case "unterminated string closes again" `Quick (fun () ->
      let s0 = "<?php $s = 'ok'; $t = 2;" in
      let s1 = "<?php $s = ok'; $t = 2;" (* broken *) in
      let s2 = "<?php $s = 'ok2'; $t = 2;" in
      let session = Project.Increment.create () in
      let r0 = Project.Increment.update session ~path:"f.php" ~source:s0 in
      Alcotest.(check bool) "initial ok" true (Result.is_ok r0);
      let r1 = Project.Increment.update session ~path:"f.php" ~source:s1 in
      Alcotest.(check bool) "broken errors" true (Result.is_error r1);
      let r2 = Project.Increment.update session ~path:"f.php" ~source:s2 in
      Alcotest.(check bool) "recovered" true (Result.is_ok r2))

(* ------------------------------------------------------------------ *)
(* Incremental parse equivalence                                      *)
(* ------------------------------------------------------------------ *)

let full_result ~path source : (Ast.program, Project.parse_error) result =
  match Parser.parse_source ~file:path source with
  | prog -> Ok prog
  | exception Parser.Parse_error (msg, _) -> Error (Project.Syntax msg)
  | exception Lexer.Error (msg, line) ->
      Error
        (Project.Syntax
           (Printf.sprintf "lexical error on line %d: %s" line msg))
  | exception Parser.Depth_exceeded (msg, _) ->
      Error (Project.Over_budget msg)

let result_fingerprint = function
  | Ok prog -> "ok:" ^ Digest.structural prog
  | Error (Project.Syntax m) -> "syntax:" ^ m
  | Error (Project.Over_budget m) -> "budget:" ^ m

let check_equivalent session ~path source =
  let incr = Project.Increment.update session ~path ~source in
  let cold = full_result ~path source in
  Alcotest.(check string)
    "incremental = cold (positions included)"
    (result_fingerprint cold) (result_fingerprint incr)

(* Run a sequence of sources through one session, asserting cold
   equivalence after every step, and return a named counter's delta. *)
let run_seq ?(counter = "") sources =
  let before = if counter = "" then 0 else Obs.Mirror.get counter in
  let session = Project.Increment.create () in
  List.iter (fun s -> check_equivalent session ~path:"seq.php" s) sources;
  if counter = "" then 0 else Obs.Mirror.get counter - before

let check_seq name ?counter ?expect_min sources =
  Alcotest.test_case name `Quick (fun () ->
      match (counter, expect_min) with
      | Some c, Some n ->
          let d = run_seq ~counter:c sources in
          if d < n then
            Alcotest.failf "expected %s to rise by >= %d, got %d" c n d
      | _ ->
          ignore (run_seq sources))

(* replace the first occurrence of [needle]; fails the test if absent *)
let replace needle by s =
  let nl = String.length needle and sl = String.length s in
  let rec find i =
    if i + nl > sl then Alcotest.failf "edit pattern %S not found" needle
    else if String.sub s i nl = needle then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ by ^ String.sub s (i + nl) (sl - i - nl)

let three_defs body2 =
  Printf.sprintf
    "<?php\n\
     function one($a) {\n  return $a . 'x';\n}\n\
     function two($b) {\n  %s\n}\n\
     function three($c) {\n  return strlen($c);\n}\n"
    body2

let seq_cases =
  [
    check_seq "single-def body edit reparses region"
      ~counter:"parser.region.reparse" ~expect_min:1
      [
        three_defs "return $b;";
        three_defs "return $b . 'y';";
        three_defs "return $b . 'yz';";
      ];
    check_seq "straddling edit falls back"
      ~counter:"parser.region.fallback" ~expect_min:1
      [
        three_defs "return $b;";
        (* edit the tail of two() and the head of three() in one update:
           damage spans two top-level definitions *)
        (three_defs "return $b;"
        |> replace "return $b;\n}\nfunction three($c)"
             "return $b . '!';\n}\nfunction three($c, $d)");
      ];
    check_seq "whitespace-only edit"
      [
        three_defs "return $b;";
        String.concat "\n\n" [ three_defs "return $b;" ];
        three_defs "return $b;" ^ "\n\n\n";
      ];
    check_seq "heredoc body edit"
      [
        "<?php\nfunction h() {\n  $q = <<<SQL\nSELECT a FROM t\nSQL;\n  \
         return $q;\n}\nfunction g() { return 1; }\n";
        "<?php\nfunction h() {\n  $q = <<<SQL\nSELECT a, b FROM t\nSQL;\n  \
         return $q;\n}\nfunction g() { return 1; }\n";
      ];
    check_seq "nowdoc body edit"
      [
        "<?php function n() { $x = <<<'EOT'\nliteral $a\nEOT;\nreturn $x; }\n";
        "<?php function n() { $x = <<<'EOT'\nliteral $b\nEOT;\nreturn $x; }\n";
      ];
    check_seq "short echo block edit"
      [
        "<html><?= $title ?><body><?php $x = 1; ?></body></html>";
        "<html><?= $subtitle ?><body><?php $x = 1; ?></body></html>";
        "<html><?= $subtitle ?><body><?php $x = 2; ?></body></html>";
      ];
    check_seq "string breaks then heals"
      [
        "<?php function s() { $a = 'one'; return $a; }";
        "<?php function s() { $a = one'; return $a; }";
        "<?php function s() { $a = 'another'; return $a; }";
      ];
    check_seq "statement inserted between defs"
      [
        three_defs "return $b;";
        (three_defs "return $b;"
        |> replace "}\nfunction three" "}\n$glob = 1;\nfunction three");
      ];
    check_seq "definition deleted"
      [
        three_defs "return $b;";
        "<?php\nfunction one($a) {\n  return $a . 'x';\n}\n\
         function three($c) {\n  return strlen($c);\n}\n";
      ];
    check_seq "signature change"
      [
        three_defs "return $b;";
        (three_defs "return $b;"
        |> replace "function two($b)" "function two($b, $extra = 'd')");
      ];
    check_seq "close tag inserted mid-function"
      [
        "<?php function f() { $a = 1; return $a; } function g() { return 2; }";
        "<?php function f() { $a = 1; ?> html <?php return $a; } function g() { return 2; }";
      ];
  ]

let resume_counted =
  Alcotest.test_case "relex resume and resync are counted" `Quick (fun () ->
      let before_resume = Obs.Mirror.get "lexer.ckpt.resume" in
      let before_resync = Obs.Mirror.get "lexer.ckpt.resync_tokens" in
      let old = Lexer.lex_all big_src in
      let edited =
        edit ~at:(String.length big_src / 2) ~drop:0 ~insert:"$q = 7; " big_src
      in
      let incr, info = Lexer.relex old edited in
      Alcotest.(check int)
        "one resume" (before_resume + 1)
        (Obs.Mirror.get "lexer.ckpt.resume");
      let resynced = Obs.Mirror.get "lexer.ckpt.resync_tokens" - before_resync in
      let total = Array.length incr.Lexer.lx_tokens in
      if resynced <= 0 || resynced >= total / 2 then
        Alcotest.failf "expected a small fresh-token count, got %d of %d"
          resynced total;
      (* the reuse info must cover most of the stream on both sides *)
      if info.Lexer.rl_prefix = 0 then Alcotest.fail "no prefix reused";
      if info.Lexer.rl_old_suffix >= Array.length old.Lexer.lx_tokens then
        Alcotest.fail "no suffix reused")

(* ------------------------------------------------------------------ *)
(* Randomized edit storm with splice verification                     *)
(* ------------------------------------------------------------------ *)

let storm =
  Alcotest.test_case "seeded random edit storm" `Quick (fun () ->
      Project.Increment.set_verify true;
      Fun.protect
        ~finally:(fun () -> Project.Increment.set_verify false)
        (fun () ->
          let mismatch0 = Obs.Mirror.get "parser.region.verify_mismatch" in
          let rng = Random.State.make [| 0x5afe |] in
          let alphabet = "abc $_='\";{}()<>?+.\n1x" in
          let session = Project.Increment.create () in
          let src = ref big_src in
          check_equivalent session ~path:"storm.php" !src;
          for _ = 1 to 120 do
            let len = String.length !src in
            let at = Random.State.int rng (len - 1) in
            let drop =
              if Random.State.bool rng then 0
              else min (Random.State.int rng 12) (len - at - 1)
            in
            let insert =
              if Random.State.bool rng then ""
              else
                String.init
                  (1 + Random.State.int rng 8)
                  (fun _ ->
                    alphabet.[Random.State.int rng (String.length alphabet)])
            in
            if drop > 0 || insert <> "" then begin
              src := edit ~at ~drop ~insert !src;
              check_equivalent session ~path:"storm.php" !src
            end
          done;
          Alcotest.(check int)
            "no splice/full mismatches" mismatch0
            (Obs.Mirror.get "parser.region.verify_mismatch")))

let () =
  Alcotest.run "increment"
    [
      ("relex", relex_cases);
      ("recovery", [ recovery_case ]);
      ("equivalence", seq_cases);
      ("counters", [ resume_counted ]);
      ("storm", [ storm ]);
    ]
