(** Malformed-input coverage: unterminated strings/heredocs, nesting at and
    past the parser fuel limit, empty and binary files.  Every layer must
    answer with a structured value — [Lexer.Error]/[Parse_error] from the
    front end is acceptable only below {!Phplang.Project.parse_file}; from
    there up it is [Error _] results and [Failed _] outcomes, never an
    escaped exception. *)

open Phplang

let case = Alcotest.test_case

let file path source = { Project.path; source }

(* Run [f] with a temporarily tightened budget, restoring the default even
   on failure — the budget is process-global state. *)
let with_budget b f =
  Secflow.Budget.set b;
  Fun.protect ~finally:Secflow.Budget.reset f

let nested_expr depth = "<?php $x = " ^ String.make depth '(' ^ "1"
                        ^ String.make depth ')' ^ ";"

let malformed_sources =
  [
    ("unterminated double-quoted string", "<?php $x = \"never closed");
    ("unterminated single-quoted string", "<?php $x = 'never closed");
    ("unterminated heredoc", "<?php $x = <<<EOT\nno terminator here");
    ("unterminated block comment", "<?php /* no end");
    ("empty file", "");
    ("binary blob", "\x00\x01\x02\xff\xfe<?php\x00$x =");
    ("lone open tag then garbage", "<?php $$$ %%% @@@");
  ]

let lexer_cases =
  List.map
    (fun (name, src) ->
      case ("lexer: " ^ name) `Quick (fun () ->
          (* tokenizing either succeeds or raises the lexer's own error —
             anything else (Stack_overflow, Failure, ...) is a bug *)
          match Lexer.tokenize src with
          | _ -> ()
          | exception Lexer.Error (_, _) -> ()
          | exception exn ->
              Alcotest.failf "lexer escaped with %s" (Printexc.to_string exn)))
    malformed_sources

let parser_cases =
  List.map
    (fun (name, src) ->
      case ("parse_file: " ^ name) `Quick (fun () ->
          match Project.parse_file (file "m.php" src) with
          | Ok _ -> ()
          | Error (Project.Syntax _) -> ()
          | Error (Project.Over_budget _) -> ()
          | exception exn ->
              Alcotest.failf "parse_file escaped with %s"
                (Printexc.to_string exn)))
    malformed_sources

let fuel_cases =
  [
    case "nesting under the fuel limit parses" `Quick (fun () ->
        match Project.parse_file (file "ok.php" (nested_expr 100)) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "rejected: %s" (Project.parse_error_message e));
    case "nesting past the fuel limit is Over_budget, not a crash" `Quick
      (fun () ->
        let depth = Parser.nesting_limit () + 64 in
        match Project.parse_file (file "deep.php" (nested_expr depth)) with
        | Error (Project.Over_budget _) -> ()
        | Ok _ -> Alcotest.fail "deep nesting unexpectedly parsed"
        | Error (Project.Syntax msg) ->
            Alcotest.failf "expected Over_budget, got Syntax: %s" msg);
    case "prefix-operator chains hit the fuel too" `Quick (fun () ->
        let depth = Parser.nesting_limit () + 64 in
        let src = "<?php $x = " ^ String.make depth '!' ^ "1;" in
        match Project.parse_file (file "bangs.php" src) with
        | Error (Project.Over_budget _) -> ()
        | Ok _ -> Alcotest.fail "unexpectedly parsed"
        | Error (Project.Syntax msg) ->
            Alcotest.failf "expected Over_budget, got Syntax: %s" msg);
    case "the budget flag tightens the fuel" `Quick (fun () ->
        with_budget
          { Secflow.Budget.default with Secflow.Budget.parse_depth = 32 }
          (fun () ->
            match Project.parse_file (file "b32.php" (nested_expr 100)) with
            | Error (Project.Over_budget _) -> ()
            | Ok _ -> Alcotest.fail "should exceed the tightened budget"
            | Error (Project.Syntax msg) ->
                Alcotest.failf "expected Over_budget, got Syntax: %s" msg);
        (* restored: the same source parses again under the default *)
        match Project.parse_file (file "b32-after.php" (nested_expr 100)) with
        | Ok _ -> ()
        | Error e ->
            Alcotest.failf "default budget rejected: %s"
              (Project.parse_error_message e));
  ]

(* Every analyzer must degrade malformed files to Failed outcomes. *)
let analyzers =
  [ ("phpSAFE", fun p -> Phpsafe.analyze_project p);
    ("RIPS", Rips.tool.Secflow.Tool.analyze_project);
    ("Pixy", Pixy.tool.Secflow.Tool.analyze_project) ]

let analyzer_cases =
  List.concat_map
    (fun (tool_name, analyze) ->
      List.map
        (fun (name, src) ->
          case (tool_name ^ ": " ^ name) `Quick (fun () ->
              let project = Project.make ~name:"m" [ file "m.php" src ] in
              match analyze project with
              | (result : Secflow.Report.result) ->
                  Alcotest.(check int) "one outcome" 1
                    (List.length result.Secflow.Report.outcomes)
              | exception exn ->
                  Alcotest.failf "%s escaped with %s" tool_name
                    (Printexc.to_string exn)))
        (("deep nesting past the fuel limit",
          nested_expr (Parser.nesting_limit () + 64))
        :: malformed_sources))
    analyzers

let budget_outcome_cases =
  [
    case "phpSAFE reports fuel exhaustion as Budget_exhausted" `Quick
      (fun () ->
        let deep = nested_expr (Parser.nesting_limit () + 64) in
        let project = Project.make ~name:"m" [ file "deep.php" deep ] in
        let result = Phpsafe.analyze_project project in
        match result.Secflow.Report.outcomes with
        | [ (_, Secflow.Report.Failed (Secflow.Report.Budget_exhausted _)) ] ->
            Alcotest.(check int) "counted as an error" 1
              result.Secflow.Report.errors
        | _ -> Alcotest.fail "expected a single Budget_exhausted outcome");
    case "include-closure cap degrades to Budget_exhausted" `Quick (fun () ->
        (* a 12-deep include chain with a closure cap of 4 *)
        let files =
          List.init 12 (fun i ->
              let next =
                if i = 11 then "" else Printf.sprintf "include 'f%d.php';" (i + 1)
              in
              file (Printf.sprintf "f%d.php" i) ("<?php " ^ next))
        in
        let project = Project.make ~name:"chain" files in
        with_budget
          { Secflow.Budget.default with Secflow.Budget.include_depth = 4 }
          (fun () ->
            let result = Phpsafe.analyze_project project in
            Alcotest.(check bool) "f0 fails on the closure cap" true
              (match List.assoc "f0.php" result.Secflow.Report.outcomes with
              | Secflow.Report.Failed (Secflow.Report.Budget_exhausted _) ->
                  true
              | _ -> false)));
  ]

let () =
  Alcotest.run "malformed"
    [
      ("lexer", lexer_cases);
      ("parser", parser_cases);
      ("nesting fuel", fuel_cases);
      ("analyzers", analyzer_cases);
      ("budget outcomes", budget_outcome_cases);
    ]
