(** Chaos-suite tests: the E15 harness ({!Evalkit.Chaos}) against live
    daemons.  The acceptance invariants: zero daemon crashes, every
    request terminating in one of the four terminal classes, delivered
    reports byte-identical to the in-process encoder — and the outcome
    table byte-identical between a sequential ([jobs:1]) and a parallel
    ([jobs:4]) daemon for the same seed, which is what makes the chaos
    results reviewable as a diff. *)

module Chaos = Evalkit.Chaos

let case = Alcotest.test_case

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let seed = 1105
let rounds = 3

let check_invariants label (r : Chaos.report) =
  Alcotest.(check int) (label ^ ": zero daemon crashes") 0 r.Chaos.ch_crashes;
  Alcotest.(check int)
    (label ^ ": every request terminated")
    0 r.Chaos.ch_unterminated;
  Alcotest.(check bool)
    (label ^ ": delivered reports byte-identical")
    true r.Chaos.ch_identity_ok;
  Alcotest.(check int)
    (label ^ ": all requests accounted for")
    (rounds * List.length Chaos.scenario_order)
    r.Chaos.ch_requests;
  (* the control scenarios must actually deliver reports, the fault
     scenarios must actually bite — otherwise the harness is a no-op *)
  List.iter
    (fun (row : Chaos.row) ->
      match row.Chaos.cr_scenario with
      | "clean-vuln" | "clean-plain" | "trickle" | "disk-fault" ->
          Alcotest.(check int)
            (label ^ ": " ^ row.Chaos.cr_scenario ^ " all reports")
            rounds row.Chaos.cr_report
      | "mid-frame-cut" | "stall" ->
          Alcotest.(check int)
            (label ^ ": " ^ row.Chaos.cr_scenario ^ " all transport")
            rounds row.Chaos.cr_transport
      | "slow-deadline" ->
          Alcotest.(check int)
            (label ^ ": slow-deadline all deadline_exceeded")
            rounds row.Chaos.cr_deadline
      | "overload-shed" ->
          Alcotest.(check int)
            (label ^ ": overload-shed all overloaded")
            rounds row.Chaos.cr_overloaded
      | other -> Alcotest.failf "unknown scenario row: %s" other)
    r.Chaos.ch_rows

let cases =
  [
    case "chaos outcomes are invariant across pool sizes" `Slow (fun () ->
        let seq = Chaos.run ~seed ~rounds ~jobs:1 () in
        check_invariants "jobs=1" seq;
        let par = Chaos.run ~seed ~rounds ~jobs:4 () in
        check_invariants "jobs=4" par;
        Alcotest.(check string) "outcome tables byte-identical"
          (Chaos.outcome_table seq) (Chaos.outcome_table par));
    case "deadline overshoot stays under the stated tolerance" `Slow
      (fun () ->
        let r = Chaos.run ~seed:7 ~rounds ~jobs:2 () in
        check_invariants "jobs=2" r;
        Alcotest.(check bool)
          (Printf.sprintf "p99 %.1fms <= %.0fms" r.Chaos.ch_overshoot_p99_ms
             r.Chaos.ch_tolerance_ms)
          true
          (r.Chaos.ch_overshoot_p99_ms <= r.Chaos.ch_tolerance_ms));
  ]

let () = Alcotest.run "chaos" [ ("chaos suite", cases) ]
