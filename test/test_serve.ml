(** Serving-layer tests: frame codec under partial/coalesced delivery,
    defensive request decoding, and the daemon end-to-end over its real
    Unix socket — byte-identity with the in-process encoder, protocol
    robustness (malformed JSON, oversized frames, wrong protocol version,
    mid-request disconnects), admission control, graceful shutdown and
    fault-injected scan payloads.  The invariant throughout: structured
    error replies or a clean close, never a crash. *)

module Protocol = Serve.Protocol
module Scan = Serve.Scan
module Json = Secflow.Json

let case = Alcotest.test_case

(* socket clients must see EPIPE as an error code, not a fatal signal *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* ------------------------------------------------------------------ *)
(* Helpers                                                            *)
(* ------------------------------------------------------------------ *)

let project name files =
  Phplang.Project.make ~name
    (List.map (fun (path, source) -> { Phplang.Project.path; source }) files)

let vuln_project =
  project "demo"
    [ ("a.php", "<?php\n$x = $_GET['q'];\necho $x;\n");
      ("b.php",
       "<?php\n$id = $_POST['id'];\nmysql_query(\"SELECT * FROM t WHERE id = \
        $id\");\n") ]

let clean_project = project "clean" [ ("ok.php", "<?php echo 'hello';\n") ]

(* Findings from every new vulnerability class; the so-sqli one only
   exists when the two-phase [second_order] pass connects the stored
   write in store.php to the read-back sink in render.php. *)
let classes_project =
  project "classes"
    [ ("cmd.php",
       "<?php\nsystem('convert ' . $_GET['f']);\nreadfile('/srv/' . \
        $_POST['p']);\nwp_remote_get($_GET['u']);\n");
      ("store.php", "<?php update_option('cp_msg', $_POST['msg']);\n");
      ("render.php",
       "<?php\n$m = get_option('cp_msg');\n$wpdb->query(\"UPDATE t SET m = \
        '\" . $m . \"'\");\n") ]

let scan_req ?id ?tenant ?(opts = Scan.default)
    ?(budget = Secflow.Budget.default) ?deadline_ms proj =
  Protocol.encode_scan_request
    { Protocol.sr_id = id; sr_tenant = tenant; sr_project = proj;
      sr_opts = opts; sr_budget = budget; sr_deadline_ms = deadline_ms }

let error_code reply =
  match Json.parse reply with
  | Error m -> Alcotest.fail ("reply is not JSON: " ^ m)
  | Ok json -> (
      match
        ( Option.bind (Json.member "ok" json) Json.to_bool_opt,
          Option.bind (Json.member "error" json) (Json.member "code")
          |> fun o -> Option.bind o Json.to_string_opt )
      with
      | Some false, Some code -> code
      | _ -> Alcotest.fail ("not an error reply: " ^ reply))

let is_ok reply =
  match Json.parse reply with
  | Ok json ->
      Option.bind (Json.member "ok" json) Json.to_bool_opt = Some true
  | Error _ -> false

(* ------------------------------------------------------------------ *)
(* Frame codec over a socketpair                                       *)
(* ------------------------------------------------------------------ *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let frame_cases =
  [
    case "round-trip, including the empty payload" `Quick (fun () ->
        with_socketpair (fun a b ->
            List.iter
              (fun payload ->
                Protocol.write_frame a payload;
                match Protocol.read_frame b with
                | Protocol.Frame got ->
                    Alcotest.(check string) "payload" payload got
                | _ -> Alcotest.fail "expected a frame")
              [ "hello"; ""; String.make 100_000 'x' ]));
    case "partial delivery: one byte at a time still yields the frame"
      `Quick (fun () ->
        with_socketpair (fun a b ->
            let payload = "{\"op\":\"status\"}" in
            let writer =
              Thread.create
                (fun () ->
                  (* hand-build the frame and trickle it byte by byte *)
                  let len = String.length payload in
                  let header =
                    Bytes.init 4 (fun i ->
                        Char.chr ((len lsr (8 * (3 - i))) land 0xff))
                  in
                  let all = Bytes.cat header (Bytes.of_string payload) in
                  Bytes.iter
                    (fun c ->
                      ignore
                        (Unix.write a (Bytes.make 1 c) 0 1 : int);
                      Thread.delay 0.001)
                    all)
                ()
            in
            let got = Protocol.read_frame b in
            Thread.join writer;
            match got with
            | Protocol.Frame s -> Alcotest.(check string) "payload" payload s
            | _ -> Alcotest.fail "expected a frame"));
    case "coalesced delivery: two frames written back-to-back" `Quick
      (fun () ->
        with_socketpair (fun a b ->
            Protocol.write_frame a "first";
            Protocol.write_frame a "second";
            (match Protocol.read_frame b with
            | Protocol.Frame s -> Alcotest.(check string) "first" "first" s
            | _ -> Alcotest.fail "expected first frame");
            match Protocol.read_frame b with
            | Protocol.Frame s -> Alcotest.(check string) "second" "second" s
            | _ -> Alcotest.fail "expected second frame"));
    case "oversized declared length is reported, not allocated blindly"
      `Quick (fun () ->
        with_socketpair (fun a b ->
            Protocol.write_frame a (String.make 4096 'y');
            match Protocol.read_frame ~max_bytes:1024 b with
            | Protocol.Oversized n -> Alcotest.(check int) "length" 4096 n
            | _ -> Alcotest.fail "expected Oversized"));
    case "truncated header or body reads as Eof" `Quick (fun () ->
        with_socketpair (fun a b ->
            ignore (Unix.write a (Bytes.of_string "\000\000") 0 2 : int);
            Unix.close a;
            match Protocol.read_frame b with
            | Protocol.Eof -> ()
            | _ -> Alcotest.fail "expected Eof on truncated header");
        with_socketpair (fun a b ->
            (* header promises 100 bytes; deliver 3 and vanish *)
            ignore
              (Unix.write a (Bytes.of_string "\000\000\000\100abc") 0 7 : int);
            Unix.close a;
            match Protocol.read_frame b with
            | Protocol.Eof -> ()
            | _ -> Alcotest.fail "expected Eof on truncated body"));
    case "write to a closed peer raises Closed, not a signal" `Quick
      (fun () ->
        with_socketpair (fun a b ->
            Unix.close b;
            let big = String.make 1_000_000 'z' in
            match
              (* the first write may land in the kernel buffer; keep
                 writing until the failure surfaces *)
              for _ = 1 to 64 do
                Protocol.write_frame a big
              done
            with
            | () -> Alcotest.fail "expected Closed"
            | exception Protocol.Closed -> ()));
  ]

(* ------------------------------------------------------------------ *)
(* Request decoding                                                    *)
(* ------------------------------------------------------------------ *)

let expect_code expected payload =
  match Protocol.decode_request payload with
  | Ok _ -> Alcotest.fail ("decoded instead of rejecting: " ^ payload)
  | Error e -> Alcotest.(check string) "error code" expected e.Protocol.e_code

let decode_cases =
  [
    case "malformed JSON is bad_json" `Quick (fun () ->
        List.iter (expect_code "bad_json")
          [ "{"; "not json"; "{\"op\":}"; "\xff\xfe"; "{} trailing" ]);
    case "missing or wrong protocol version is bad_proto" `Quick (fun () ->
        expect_code "bad_proto" "{\"op\":\"status\"}";
        expect_code "bad_proto"
          "{\"proto\":\"phpsafe-serve/999\",\"op\":\"status\"}");
    case "missing and unknown ops are bad_request" `Quick (fun () ->
        expect_code "bad_request" "{\"proto\":\"phpsafe-serve/1\"}";
        expect_code "bad_request"
          "{\"proto\":\"phpsafe-serve/1\",\"op\":\"explode\"}");
    case "scan validation: project, tenant, tool, kind, budget" `Quick
      (fun () ->
        expect_code "bad_request"
          "{\"proto\":\"phpsafe-serve/1\",\"op\":\"scan\"}";
        expect_code "bad_request"
          "{\"proto\":\"phpsafe-serve/1\",\"op\":\"scan\",\"tenant\":\"../x\",\
           \"project\":{\"name\":\"p\",\"files\":[]}}";
        expect_code "bad_request"
          "{\"proto\":\"phpsafe-serve/1\",\"op\":\"scan\",\"tool\":\"weka\",\
           \"project\":{\"name\":\"p\",\"files\":[]}}";
        expect_code "bad_request"
          "{\"proto\":\"phpsafe-serve/1\",\"op\":\"scan\",\"kind\":\"csrf\",\
           \"project\":{\"name\":\"p\",\"files\":[]}}";
        expect_code "bad_request"
          "{\"proto\":\"phpsafe-serve/1\",\"op\":\"scan\",\
           \"budget\":{\"parse_depth\":0},\
           \"project\":{\"name\":\"p\",\"files\":[]}}";
        expect_code "bad_request"
          "{\"proto\":\"phpsafe-serve/1\",\"op\":\"scan\",\
           \"project\":{\"name\":\"p\",\"files\":[{\"path\":\"\",\
           \"source\":\"x\"}]}}");
    case "deeply nested payload is rejected, not a stack overflow" `Quick
      (fun () ->
        let bomb =
          String.concat "" (List.init 100_000 (fun _ -> "["))
          ^ String.concat "" (List.init 100_000 (fun _ -> "]"))
        in
        expect_code "bad_json" bomb);
    case "scan request round-trips through encode/decode" `Quick (fun () ->
        let budget =
          { Secflow.Budget.default with Secflow.Budget.parse_depth = 7 }
        in
        let opts =
          { Scan.tool = "phpsafe"; kind = Some Secflow.Vuln.Xss;
            contexts = true; flow = true; second_order = true }
        in
        let payload =
          scan_req ~id:"req-1" ~tenant:"acme" ~opts ~budget vuln_project
        in
        match Protocol.decode_request payload with
        | Error e -> Alcotest.fail ("rejected: " ^ e.Protocol.e_msg)
        | Ok (Protocol.Scan r) ->
            Alcotest.(check (option string)) "id" (Some "req-1")
              r.Protocol.sr_id;
            Alcotest.(check (option string)) "tenant" (Some "acme")
              r.Protocol.sr_tenant;
            Alcotest.(check bool) "opts" true (r.Protocol.sr_opts = opts);
            Alcotest.(check bool) "budget" true (r.Protocol.sr_budget = budget);
            Alcotest.(check bool) "project" true
              (r.Protocol.sr_project = vuln_project)
        | Ok _ -> Alcotest.fail "decoded to a non-scan request");
    case "simple requests round-trip" `Quick (fun () ->
        match
          Protocol.decode_request
            (Protocol.encode_simple_request ~op:"status" ~id:"s1" ())
        with
        | Ok (Protocol.Status (Some "s1")) -> ()
        | _ -> Alcotest.fail "status round-trip failed");
    case "scan_report_of_reply cuts the spliced report back out verbatim"
      `Quick (fun () ->
        let report = "{\"summary\":{\"xss\":1},\"findings\":[]}" in
        let reply = Protocol.scan_reply ~id:"x\"report\":y" ~report () in
        (match Protocol.scan_report_of_reply reply with
        | Ok got -> Alcotest.(check string) "verbatim" report got
        | Error m -> Alcotest.fail m);
        match
          Protocol.scan_report_of_reply
            (Protocol.error_reply ~op:"scan" ~code:"overloaded" ~msg:"full" ())
        with
        | Error m ->
            Alcotest.(check bool) "carries the code" true
              (String.length m > 0
              && String.sub m 0 12 = "server error")
        | Ok _ -> Alcotest.fail "error reply produced a report");
  ]

(* ------------------------------------------------------------------ *)
(* Daemon end-to-end                                                   *)
(* ------------------------------------------------------------------ *)

let sock_seq = ref 0

let connect sock =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let with_daemon ?(reshape = fun c -> c) f =
  incr sock_seq;
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "phpsafe-test-serve-%d-%d.sock" (Unix.getpid ())
         !sock_seq)
  in
  if Sys.file_exists sock then Sys.remove sock;
  let cfg =
    reshape (Serve.Daemon.default_config (Serve.Daemon.Unix_sock sock))
  in
  let daemon = Thread.create Serve.Daemon.run cfg in
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Sys.file_exists sock)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  if not (Sys.file_exists sock) then Alcotest.fail "daemon did not come up";
  Fun.protect
    ~finally:(fun () ->
      (match connect sock with
      | exception _ -> ()
      | fd ->
          (try
             Protocol.write_frame fd
               (Protocol.encode_simple_request ~op:"shutdown" ());
             ignore (Protocol.read_frame fd)
           with _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ()));
      Thread.join daemon)
    (fun () -> f sock)

(* One request/reply on a fresh connection. *)
let roundtrip_on connect_fn payload =
  let fd = connect_fn () in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Protocol.write_frame fd payload;
      match Protocol.read_frame fd with
      | Protocol.Frame reply -> reply
      | Protocol.Eof -> Alcotest.fail "connection closed instead of replying"
      | Protocol.Timed_out -> Alcotest.fail "read timed out"
      | Protocol.Oversized _ -> Alcotest.fail "oversized reply")

let roundtrip sock payload = roundtrip_on (fun () -> connect sock) payload

let scan_via sock ?tenant ?(opts = Scan.default) proj =
  match
    Protocol.scan_report_of_reply (roundtrip sock (scan_req ?tenant ~opts proj))
  with
  | Ok report -> report
  | Error m -> Alcotest.fail ("scan failed: " ^ m)

let daemon_cases =
  [
    case "scan replies are byte-identical to the in-process encoder" `Quick
      (fun () ->
        with_daemon (fun sock ->
            List.iter
              (fun (opts : Scan.opts) ->
                let expected = Scan.run_json opts vuln_project in
                Alcotest.(check string)
                  (Printf.sprintf "tool=%s contexts=%b flow=%b kind=%s"
                     opts.Scan.tool opts.Scan.contexts opts.Scan.flow
                     (Scan.kind_to_string opts.Scan.kind))
                  expected
                  (scan_via sock ~opts vuln_project))
              [ Scan.default;
                { Scan.default with Scan.contexts = true };
                { Scan.default with Scan.flow = true };
                { Scan.default with Scan.kind = Some Secflow.Vuln.Xss };
                { Scan.default with Scan.tool = "rips" };
                { Scan.default with Scan.tool = "pixy" } ]))
    ;
    case "new-class scans are byte-identical, two-phase included" `Quick
      (fun () ->
        with_daemon (fun sock ->
            List.iter
              (fun (opts : Scan.opts) ->
                let expected = Scan.run_json opts classes_project in
                Alcotest.(check string)
                  (Printf.sprintf "second_order=%b kind=%s"
                     opts.Scan.second_order
                     (Scan.kind_to_string opts.Scan.kind))
                  expected
                  (scan_via sock ~opts classes_project))
              [ Scan.default;
                { Scan.default with Scan.second_order = true };
                { Scan.default with Scan.second_order = true;
                  Scan.kind = Some Secflow.Vuln.Second_order_sqli };
                { Scan.default with Scan.kind = Some Secflow.Vuln.Cmdi };
                { Scan.default with Scan.kind = Some Secflow.Vuln.Ssrf } ];
            (* the so-sqli finding exists only under the two-phase pass *)
            let contains hay needle =
              let nl = String.length needle and hl = String.length hay in
              let rec go i =
                i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
              in
              go 0
            in
            let flat = scan_via sock classes_project in
            let so =
              scan_via sock
                ~opts:{ Scan.default with Scan.second_order = true }
                classes_project
            in
            Alcotest.(check bool) "flat misses so-sqli" false
              (contains flat "\"kind\":\"SO-SQLi\"");
            Alcotest.(check bool) "two-phase finds so-sqli" true
              (contains so "\"kind\":\"SO-SQLi\"")))
    ;
    case "malformed JSON gets an error reply and the connection survives"
      `Quick (fun () ->
        with_daemon (fun sock ->
            let fd = connect sock in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                Protocol.write_frame fd "this is not json";
                (match Protocol.read_frame fd with
                | Protocol.Frame reply ->
                    Alcotest.(check string) "code" "bad_json"
                      (error_code reply)
                | _ -> Alcotest.fail "expected an error reply");
                (* same connection still serves valid requests *)
                Protocol.write_frame fd
                  (Protocol.encode_simple_request ~op:"status" ());
                match Protocol.read_frame fd with
                | Protocol.Frame reply ->
                    Alcotest.(check bool) "status ok" true (is_ok reply)
                | _ -> Alcotest.fail "connection did not survive")))
    ;
    case "unknown protocol version gets bad_proto, connection survives"
      `Quick (fun () ->
        with_daemon (fun sock ->
            let fd = connect sock in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                Protocol.write_frame fd
                  "{\"proto\":\"phpsafe-serve/99\",\"op\":\"status\"}";
                (match Protocol.read_frame fd with
                | Protocol.Frame reply ->
                    Alcotest.(check string) "code" "bad_proto"
                      (error_code reply)
                | _ -> Alcotest.fail "expected an error reply");
                Protocol.write_frame fd
                  (Protocol.encode_simple_request ~op:"metrics" ());
                match Protocol.read_frame fd with
                | Protocol.Frame reply ->
                    Alcotest.(check bool) "metrics ok" true (is_ok reply)
                | _ -> Alcotest.fail "connection did not survive")))
    ;
    case "oversized frame gets a structured refusal, then a clean close"
      `Quick (fun () ->
        with_daemon
          ~reshape:(fun c -> { c with Serve.Daemon.max_frame_bytes = 512 })
          (fun sock ->
            let fd = connect sock in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                Protocol.write_frame fd (String.make 4096 'x');
                (match Protocol.read_frame fd with
                | Protocol.Frame reply ->
                    Alcotest.(check string) "code" "oversized"
                      (error_code reply)
                | _ -> Alcotest.fail "expected an error reply");
                match Protocol.read_frame fd with
                | Protocol.Eof -> ()
                | _ -> Alcotest.fail "expected a close after oversized");
            (* and the daemon itself is still alive *)
            Alcotest.(check bool) "daemon alive" true
              (is_ok
                 (roundtrip sock
                    (Protocol.encode_simple_request ~op:"status" ())))))
    ;
    case "mid-request disconnect never takes the daemon down" `Quick
      (fun () ->
        with_daemon (fun sock ->
            (* fire a scan and vanish without reading the reply *)
            let fd = connect sock in
            Protocol.write_frame fd (scan_req vuln_project);
            Unix.close fd;
            (* a second client is served normally afterwards *)
            let expected = Scan.run_json Scan.default vuln_project in
            Alcotest.(check string) "daemon still serves" expected
              (scan_via sock vuln_project)))
    ;
    case "concurrent scans all return byte-identical reports" `Quick
      (fun () ->
        with_daemon (fun sock ->
            let expected = Scan.run_json Scan.default vuln_project in
            let results = Array.make 8 "" in
            let client i =
              results.(i) <- scan_via sock vuln_project
            in
            let threads = List.init 8 (fun i -> Thread.create client i) in
            List.iter Thread.join threads;
            Array.iteri
              (fun i got ->
                Alcotest.(check string)
                  (Printf.sprintf "client %d" i)
                  expected got)
              results))
    ;
    case "admission control: max_queue 0 sheds every scan as overloaded"
      `Quick (fun () ->
        with_daemon
          ~reshape:(fun c -> { c with Serve.Daemon.max_queue = 0 })
          (fun sock ->
            let reply = roundtrip sock (scan_req clean_project) in
            Alcotest.(check string) "code" "overloaded" (error_code reply);
            (* non-scan ops are not subject to admission control *)
            Alcotest.(check bool) "status still ok" true
              (is_ok
                 (roundtrip sock
                    (Protocol.encode_simple_request ~op:"status" ())))))
    ;
    case "graceful shutdown drains queued scans before exiting" `Quick
      (fun () ->
        let delivered = ref "" in
        let expected = Scan.run_json Scan.default vuln_project in
        with_daemon (fun sock ->
            let fd = connect sock in
            Protocol.write_frame fd (scan_req vuln_project);
            (* shutdown from a second connection while the scan is queued
               or in flight *)
            ignore
              (roundtrip sock (Protocol.encode_simple_request ~op:"shutdown" ())
                : string);
            (match Protocol.read_frame fd with
            | Protocol.Frame reply -> (
                match Protocol.scan_report_of_reply reply with
                | Ok report -> delivered := report
                | Error m -> Alcotest.fail ("drained scan failed: " ^ m))
            | _ -> Alcotest.fail "queued scan was dropped on shutdown");
            Unix.close fd);
        (* with_daemon joined the daemon thread: shutdown completed *)
        Alcotest.(check string) "drained reply is the real report" expected
          !delivered)
    ;
    case "status and metrics report the ops surface" `Quick (fun () ->
        with_daemon (fun sock ->
            ignore (scan_via sock vuln_project : string);
            let status =
              roundtrip sock (Protocol.encode_simple_request ~op:"status" ())
            in
            let metrics =
              roundtrip sock (Protocol.encode_simple_request ~op:"metrics" ())
            in
            let int_field doc path =
              match Json.parse doc with
              | Error m -> Alcotest.fail m
              | Ok json ->
                  List.fold_left
                    (fun acc name -> Option.bind acc (Json.member name))
                    (Some json) path
                  |> fun o ->
                  Option.bind o Json.to_int_opt
                  |> Option.value ~default:(-1)
            in
            Alcotest.(check bool) "served >= 1" true
              (int_field status [ "served" ] >= 1);
            Alcotest.(check int) "queue drained" 0
              (int_field status [ "queue_depth" ]);
            Alcotest.(check bool) "latency count >= 1" true
              (int_field metrics [ "latency_ms"; "count" ] >= 1)))
    ;
    case "fault-injected sources come back as reports, never crashes"
      `Quick (fun () ->
        with_daemon (fun sock ->
            List.iter
              (fun ((kind : Evalkit.Faults.kind), mutant) ->
                let expected = Scan.run_json Scan.default mutant in
                Alcotest.(check string)
                  (Evalkit.Faults.kind_label kind)
                  expected
                  (scan_via sock mutant))
              (Evalkit.Faults.mutants ~seed:42 ~count:8 vuln_project)))
    ;
  ]

(* ------------------------------------------------------------------ *)
(* TCP transport, I/O timeouts and deadlines                           *)
(* ------------------------------------------------------------------ *)

(* Like [with_daemon] but over TCP on an ephemeral port; [f] receives a
   connect function for the port the kernel actually assigned. *)
let with_tcp_daemon ?(reshape = fun c -> c) f =
  let cfg =
    reshape (Serve.Daemon.default_config (Serve.Daemon.Tcp ("127.0.0.1", 0)))
  in
  let port = Atomic.make 0 in
  let daemon =
    Thread.create
      (fun () ->
        Serve.Daemon.run
          ~on_ready:(fun addr ->
            match addr with
            | Unix.ADDR_INET (_, p) -> Atomic.set port p
            | Unix.ADDR_UNIX _ -> ())
          cfg)
      ()
  in
  let give_up = Unix.gettimeofday () +. 10. in
  while Atomic.get port = 0 && Unix.gettimeofday () < give_up do
    Thread.delay 0.005
  done;
  if Atomic.get port = 0 then Alcotest.fail "TCP daemon did not come up";
  let connect_tcp () =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd
      (Unix.ADDR_INET (Unix.inet_addr_loopback, Atomic.get port));
    fd
  in
  Fun.protect
    ~finally:(fun () ->
      (match connect_tcp () with
      | exception _ -> ()
      | fd ->
          (try
             Protocol.write_frame fd
               (Protocol.encode_simple_request ~op:"shutdown" ());
             ignore (Protocol.read_frame fd)
           with _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ()));
      Thread.join daemon)
    (fun () -> f connect_tcp)

(* Run [f] with a process-global before-analyze hook installed, clearing
   it afterwards whatever happens. *)
let with_scan_hook hook f =
  Scan.set_before_analyze_hook (Some hook);
  Fun.protect ~finally:(fun () -> Scan.set_before_analyze_hook None) f

let robustness_cases =
  [
    case "TCP transport: byte-identical scans and oversized-frame refusal"
      `Quick (fun () ->
        with_tcp_daemon
          ~reshape:(fun c -> { c with Serve.Daemon.max_frame_bytes = 4096 })
          (fun connect_tcp ->
            let expected = Scan.run_json Scan.default vuln_project in
            (match
               Protocol.scan_report_of_reply
                 (roundtrip_on connect_tcp (scan_req vuln_project))
             with
            | Ok report ->
                Alcotest.(check string) "byte-identical over TCP" expected
                  report
            | Error m -> Alcotest.fail ("TCP scan failed: " ^ m));
            let fd = connect_tcp () in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                Protocol.write_frame fd (String.make 8192 'x');
                (match Protocol.read_frame fd with
                | Protocol.Frame reply ->
                    Alcotest.(check string) "code" "oversized"
                      (error_code reply)
                | _ -> Alcotest.fail "expected an error reply");
                match Protocol.read_frame fd with
                | Protocol.Eof -> ()
                | _ -> Alcotest.fail "expected a close after oversized");
            Alcotest.(check bool) "daemon alive" true
              (is_ok
                 (roundtrip_on connect_tcp
                    (Protocol.encode_simple_request ~op:"status" ())))))
    ;
    case "io timeout: a stalled mid-frame peer is disconnected" `Quick
      (fun () ->
        with_daemon
          ~reshape:(fun c ->
            { c with Serve.Daemon.io_timeout_s = Some 0.15 })
          (fun sock ->
            let fd = connect sock in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                (* a header promising 100 bytes, then silence: the server's
                   SO_RCVTIMEO fires and it closes the connection *)
                ignore
                  (Unix.write fd (Bytes.of_string "\000\000\000\100ab") 0 6
                    : int);
                match Protocol.read_frame fd with
                | Protocol.Eof -> ()
                | _ -> Alcotest.fail "expected the server to hang up");
            (* the daemon survives and counts the timeout *)
            let status =
              roundtrip sock (Protocol.encode_simple_request ~op:"status" ())
            in
            Alcotest.(check bool) "status ok" true (is_ok status)))
    ;
    case "deadline: analysis past deadline_ms gets deadline_exceeded"
      `Quick (fun () ->
        with_scan_hook
          (fun (p : Phplang.Project.t) ->
            if String.equal p.Phplang.Project.name "e2e-slow" then begin
              (* burn wall-clock cooperatively: the Deadline.check is what
                 a real analysis does at file/pass boundaries *)
              let stop = Unix.gettimeofday () +. 5. in
              while Unix.gettimeofday () < stop do
                Thread.delay 0.005;
                Secflow.Deadline.check ()
              done
            end)
          (fun () ->
            with_daemon (fun sock ->
                let slow =
                  project "e2e-slow" [ ("a.php", "<?php echo 'x';\n") ]
                in
                let reply =
                  roundtrip sock (scan_req ~deadline_ms:50 slow)
                in
                Alcotest.(check string) "code" "deadline_exceeded"
                  (error_code reply);
                (* no deadline on the next request: same project scans fine *)
                let fine =
                  project "fine" [ ("a.php", "<?php echo 'x';\n") ]
                in
                Alcotest.(check string) "undeadlined scan still works"
                  (Scan.run_json Scan.default fine)
                  (scan_via sock fine))))
    ;
    case "deadline: a request expiring in the queue is shed without running"
      `Quick (fun () ->
        let seen = ref [] in
        let m = Mutex.create () in
        with_scan_hook
          (fun (p : Phplang.Project.t) ->
            Mutex.lock m;
            seen := p.Phplang.Project.name :: !seen;
            Mutex.unlock m;
            if String.equal p.Phplang.Project.name "holdup" then
              Thread.delay 0.4)
          (fun () ->
            with_daemon
              ~reshape:(fun c ->
                { c with
                  Serve.Daemon.jobs = Some 1;
                  Serve.Daemon.max_inflight = Some 1 })
              (fun sock ->
                let holdup =
                  project "holdup" [ ("a.php", "<?php echo 'x';\n") ]
                in
                let waiter =
                  project "expired-waiter"
                    [ ("a.php", "<?php echo 'x';\n") ]
                in
                let fd1 = connect sock in
                Protocol.write_frame fd1 (scan_req holdup);
                (* let the scheduler pick up the slow scan first *)
                Thread.delay 0.1;
                let reply = roundtrip sock (scan_req ~deadline_ms:1 waiter) in
                Alcotest.(check string) "code" "deadline_exceeded"
                  (error_code reply);
                (match Protocol.read_frame fd1 with
                | Protocol.Frame r ->
                    Alcotest.(check bool) "slow scan still delivered" true
                      (Result.is_ok (Protocol.scan_report_of_reply r))
                | _ -> Alcotest.fail "slow scan reply lost");
                Unix.close fd1;
                Mutex.lock m;
                let ran = !seen in
                Mutex.unlock m;
                Alcotest.(check bool) "expired request never analyzed" false
                  (List.mem "expired-waiter" ran))))
    ;
    case "status counts deadline_exceeded and exposes the heartbeat" `Quick
      (fun () ->
        with_daemon (fun sock ->
            let slow =
              project "e2e-slow" [ ("a.php", "<?php echo 'x';\n") ]
            in
            with_scan_hook
              (fun (p : Phplang.Project.t) ->
                if String.equal p.Phplang.Project.name "e2e-slow" then
                  let stop = Unix.gettimeofday () +. 5. in
                  let rec spin () =
                    if Unix.gettimeofday () < stop then begin
                      Thread.delay 0.005;
                      Secflow.Deadline.check ();
                      spin ()
                    end
                  in
                  spin ())
              (fun () ->
                ignore
                  (roundtrip sock (scan_req ~deadline_ms:40 slow) : string));
            let status =
              roundtrip sock (Protocol.encode_simple_request ~op:"status" ())
            in
            match Json.parse status with
            | Error m -> Alcotest.fail m
            | Ok json ->
                let int_of path =
                  Option.bind (Json.member path json) Json.to_int_opt
                in
                Alcotest.(check (option int))
                  "deadline_exceeded counted" (Some 1)
                  (int_of "deadline_exceeded");
                Alcotest.(check bool) "heartbeat_age_s present" true
                  (match Json.member "heartbeat_age_s" json with
                  | Some (Json.Float _) | Some (Json.Int _) -> true
                  | _ -> false)))
    ;
  ]

(* ------------------------------------------------------------------ *)
(* Watch sessions: edit-delta scanning                                 *)
(* ------------------------------------------------------------------ *)

let watch_cases =
  let module Watch = Serve.Watch in
  let cold_json opts proj =
    (* reference render with every warm shortcut off: what a from-scratch
       process would print for the same bytes *)
    Phplang.Project.Parse_cache.set_enabled false;
    Fun.protect
      ~finally:(fun () -> Phplang.Project.Parse_cache.set_enabled true)
      (fun () -> Scan.run_json opts proj)
  in
  [
    case "initial scan reports everything as new" `Quick (fun () ->
        let s = Watch.create Scan.default in
        let d = Watch.scan s vuln_project in
        Alcotest.(check bool) "initial" true d.Watch.d_initial;
        Alcotest.(check (list string)) "all paths changed"
          [ "a.php"; "b.php" ] d.Watch.d_changed;
        Alcotest.(check (list string)) "nothing deleted" [] d.Watch.d_deleted;
        Alcotest.(check bool) "found something" true (d.Watch.d_total > 0);
        Alcotest.(check int) "everything is an added finding" d.Watch.d_total
          (List.length d.Watch.d_added);
        Alcotest.(check (list int)) "nothing removed" []
          (List.map (fun _ -> 0) d.Watch.d_removed);
        Alcotest.(check string) "report byte-identical to a cold scan"
          (cold_json Scan.default vuln_project)
          d.Watch.d_report);
    case "an edit produces a minimal delta, byte-identical report" `Quick
      (fun () ->
        let s = Watch.create Scan.default in
        let d0 = Watch.scan s vuln_project in
        (* fix the XSS in a.php; b.php untouched *)
        let edited =
          project "demo"
            [ ("a.php", "<?php\n$x = $_GET['q'];\necho htmlentities($x);\n");
              ("b.php",
               "<?php\n$id = $_POST['id'];\nmysql_query(\"SELECT * FROM t \
                WHERE id = $id\");\n") ]
        in
        let d = Watch.scan s edited in
        Alcotest.(check bool) "not initial" false d.Watch.d_initial;
        Alcotest.(check (list string)) "only the edited path" [ "a.php" ]
          d.Watch.d_changed;
        Alcotest.(check int) "no new findings" 0 (List.length d.Watch.d_added);
        Alcotest.(check bool) "the fixed finding is removed" true
          (List.length d.Watch.d_removed > 0);
        Alcotest.(check int) "total dropped by the removals"
          (d0.Watch.d_total - List.length d.Watch.d_removed)
          d.Watch.d_total;
        Alcotest.(check string) "report byte-identical to a cold scan"
          (cold_json Scan.default edited)
          d.Watch.d_report);
    case "a deleted file retracts its findings" `Quick (fun () ->
        let s = Watch.create Scan.default in
        let d0 = Watch.scan s vuln_project in
        let shrunk =
          project "demo"
            [ ("a.php", "<?php\n$x = $_GET['q'];\necho $x;\n") ]
        in
        let d = Watch.scan s shrunk in
        Alcotest.(check (list string)) "b.php deleted" [ "b.php" ]
          d.Watch.d_deleted;
        Alcotest.(check (list string)) "nothing changed" [] d.Watch.d_changed;
        Alcotest.(check bool) "b.php findings retracted" true
          (List.length d.Watch.d_removed > 0);
        Alcotest.(check int) "total accounts for the retractions"
          (d0.Watch.d_total - List.length d.Watch.d_removed)
          d.Watch.d_total);
    case "scan_if_changed is None on a quiescent project" `Quick (fun () ->
        let s = Watch.create Scan.default in
        Alcotest.(check bool) "first scan always fires" true
          (Watch.scan_if_changed s vuln_project <> None);
        Alcotest.(check bool) "identical bytes: no event" true
          (Watch.scan_if_changed s vuln_project = None);
        let edited =
          project "demo"
            [ ("a.php", "<?php\n$x = $_GET['q'];\necho $x; echo $x;\n");
              ("b.php",
               "<?php\n$id = $_POST['id'];\nmysql_query(\"SELECT * FROM t \
                WHERE id = $id\");\n") ]
        in
        Alcotest.(check bool) "an edit fires again" true
          (Watch.scan_if_changed s edited <> None));
    case "loop delivers the initial scan plus one delta per change" `Quick
      (fun () ->
        let s = Watch.create Scan.default in
        let versions =
          [| vuln_project;
             project "demo" [ ("a.php", "<?php\n$x = $_GET['q'];\necho $x;\n") ]
          |]
        in
        let loads = ref 0 in
        let load () =
          let p = versions.(min 1 !loads) in
          incr loads;
          p
        in
        let events = ref [] in
        Watch.loop s ~load ~poll_ms:5 ~max_events:2
          ~on_event:(fun d -> events := d :: !events)
          ();
        match List.rev !events with
        | [ first; second ] ->
            Alcotest.(check bool) "first is the initial scan" true
              first.Watch.d_initial;
            Alcotest.(check (list string)) "second saw the deletion"
              [ "b.php" ] second.Watch.d_deleted
        | es ->
            Alcotest.fail
              (Printf.sprintf "expected exactly 2 events, got %d"
                 (List.length es)));
  ]

let () =
  Alcotest.run "serve"
    [ ("frame codec", frame_cases);
      ("request decoding", decode_cases);
      ("watch sessions", watch_cases);
      ("daemon end-to-end", daemon_cases);
      ("robustness end-to-end", robustness_cases) ]
