lib/phplang/lexer.mli: Token
