lib/phplang/token.ml: Format List String
