lib/phplang/printer.mli: Ast
