lib/phplang/project.ml: Ast Hashtbl List Option String
