lib/phplang/printer.ml: Ast Buffer List Printf String
