lib/phplang/loc.mli: Project
