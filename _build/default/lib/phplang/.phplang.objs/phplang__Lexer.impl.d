lib/phplang/lexer.ml: Buffer List Option Printf String Token
