lib/phplang/parser.mli: Ast Token
