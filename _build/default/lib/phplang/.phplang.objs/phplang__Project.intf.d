lib/phplang/project.mli: Ast
