lib/phplang/loc.ml: List Project String
