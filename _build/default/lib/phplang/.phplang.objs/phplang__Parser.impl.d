lib/phplang/parser.ml: Array Ast Buffer Lexer List Printf String Token
