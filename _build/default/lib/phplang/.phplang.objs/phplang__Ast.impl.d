lib/phplang/ast.ml: Float Format List Option String
