(** Recursive-descent parser for the PHP 5 plugin subset (see {!Ast}).

    Follows PHP's operator precedence and expands double-quoted string
    interpolation ([$var], [$var->prop], [$arr[key]], [{$expr}]) into
    {!Ast.Interp} parts. *)

exception Parse_error of string * Ast.pos
(** Parse failure with a human-readable message and source position. *)

val parse_tokens : file:string -> Token.t list -> Ast.program
(** Parse a significant-token list (see {!Lexer.significant}); [file] is
    recorded in every position. *)

val parse_source : file:string -> string -> Ast.program
(** Tokenize and parse a complete PHP source file. *)

val expr_of_string : ?file:string -> string -> Ast.expr
(** Parse a single PHP expression given without [<?php] tags — used for
    [{$...}] interpolation and convenient in tests. *)
