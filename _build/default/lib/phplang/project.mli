(** Multi-file plugin model: a named collection of PHP files with
    [include]/[require] resolution (paper §III.B). *)

type file = { path : string; source : string }

type t = { name : string; files : file list }

val make : name:string -> file list -> t

val find : t -> string -> file option
(** Look a file up by its exact project-relative path. *)

val file_count : t -> int

val include_targets : Ast.program -> string list
(** Literal include targets of a program, in source order; dynamic include
    arguments are skipped, like the real tools do. *)

val include_closure :
  parse:(file -> Ast.program option) -> t -> string -> string list * int
(** [include_closure ~parse t path] is the transitive include closure of
    [path] (sorted, including [path]) together with the maximum include
    depth.  Cycles are cut; missing files (WordPress core, typically) are
    tolerated but still count toward the depth. *)
