(** Lines-of-code accounting, used for the corpus size report (§V.E: "the
    2012 version of the plugins had 266 files analyzed with a total of
    89,560 LOC") and the seconds-per-kLOC responsiveness metric. *)

(** Physical lines in [src]. *)
let physical_lines src =
  if String.length src = 0 then 0
  else
    let n = ref 1 in
    String.iter (fun c -> if c = '\n' then incr n) src;
    (* trailing newline does not start a new line *)
    if src.[String.length src - 1] = '\n' then !n - 1 else !n

let is_blank line =
  let n = String.length line in
  let rec go i = i >= n || ((line.[i] = ' ' || line.[i] = '\t' || line.[i] = '\r') && go (i + 1)) in
  go 0

(** Non-blank lines in [src] — the LOC measure we report. *)
let count src =
  String.split_on_char '\n' src
  |> List.filter (fun l -> not (is_blank l))
  |> List.length

(** Total LOC over a project. *)
let project_loc (p : Project.t) =
  List.fold_left (fun acc (f : Project.file) -> acc + count f.Project.source) 0 p.Project.files
