(** Lines-of-code accounting for the corpus size report (paper §V.E) and
    the seconds-per-kLOC responsiveness metric. *)

val physical_lines : string -> int
(** Physical lines in a source string (a trailing newline does not start a
    new line). *)

val count : string -> int
(** Non-blank lines — the LOC measure reported everywhere. *)

val project_loc : Project.t -> int
(** Sum of {!count} over all files of a project. *)
