(** PHP tokenizer — the [token_get_all] equivalent the analyzers build on
    (paper §III.B). *)

exception Error of string * int
(** Lexing failure: message and 1-based line number. *)

val tokenize : string -> Token.t list
(** [tokenize src] splits a PHP source file into tokens, including
    whitespace, comments and inline HTML, terminated by {!Token.T_EOF}.
    Raises {!Error} on malformed input (unterminated strings/comments,
    characters outside the supported subset). *)

val significant : Token.t list -> Token.t list
(** Drop whitespace and comment tokens — phpSAFE "cleans the AST by removing
    comments and extra whitespaces" (§III.B). *)

val tokenize_significant : string -> Token.t list
(** [significant (tokenize src)]. *)
