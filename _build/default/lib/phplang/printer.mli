(** PHP pretty-printer.

    Output re-parses to an equal AST (positions aside) — a property checked
    by QCheck round trips — and is the concrete syntax for everything the
    corpus generator emits. *)

val program_to_string : Ast.program -> string
(** Render a whole program as a PHP file starting with [<?php]. *)

val expr_to_string : Ast.expr -> string
(** Render one expression, without tags or terminator. *)

val stmt_to_string : Ast.stmt -> string
(** Render one statement at indentation depth 0, without tags. *)

val interpolatable : Ast.expr -> bool
(** Whether an expression may appear inside a double-quoted string as
    [{$...}] — PHP only interpolates expressions rooted at a variable.
    Non-interpolatable {!Ast.IExpr} parts are printed as spliced
    concatenations instead. *)
