(** Vulnerability taxonomy shared by all three analyzers and the evaluation
    harness. *)

(** The two vulnerability classes phpSAFE detects (paper §I). *)
type kind = Xss | Sqli

val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit
val equal_kind : kind -> kind -> bool
val compare_kind : kind -> kind -> int

(** Malicious input-vector classes of Table II, in the paper's order —
    graded by how easily an attacker controls the source (§V.C). *)
type vector =
  | Post
  | Get
  | Post_get_cookie
  | Db
  | File_function_array

val all_vectors : vector list
val vector_to_string : vector -> string
val pp_vector : Format.formatter -> vector -> unit

val vector_is_direct : vector -> bool
(** Directly manipulable (GET/POST/COOKIE) — the "very easy to exploit"
    class of the §V.D inertia analysis. *)

(** Where tainted data enters the plugin. *)
type source =
  | Superglobal of string       (** e.g. ["$_GET"] *)
  | Database of string          (** producing function/method *)
  | File_read of string
  | Function_return of string
  | Uninitialized of string     (** register_globals-style *)
  | Unknown_source

val source_to_string : source -> string

val vector_of_source : source -> vector
(** The Table II class a source falls into. *)
