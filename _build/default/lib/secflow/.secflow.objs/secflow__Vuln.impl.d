lib/secflow/vuln.ml: Format
