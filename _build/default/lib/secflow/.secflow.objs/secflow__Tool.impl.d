lib/secflow/tool.ml: Phplang Report
