lib/secflow/vuln.mli: Format
