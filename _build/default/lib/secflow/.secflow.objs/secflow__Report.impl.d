lib/secflow/report.ml: Format Int List Map Phplang Set String Vuln
