lib/secflow/tool.mli: Phplang Report
