(** Uniform analyzer interface: the evaluation harness drives phpSAFE, RIPS
    and Pixy through this signature (paper §IV.B step 4). *)

module type ANALYZER = sig
  val name : string
  val analyze_project : Phplang.Project.t -> Report.result
end

(** First-class analyzer, convenient for lists of tools. *)
type t = {
  name : string;
  analyze_project : Phplang.Project.t -> Report.result;
}

val of_module : (module ANALYZER) -> t
