(** Uniform analyzer interface.  The evaluation harness drives phpSAFE, RIPS
    and Pixy through this signature, mirroring the paper's automated
    execution of each tool over all plugin files (§IV.B step 4). *)

module type ANALYZER = sig
  val name : string

  (** Analyze every file of a plugin project and return the merged result. *)
  val analyze_project : Phplang.Project.t -> Report.result
end

(** First-class version, convenient for lists of tools. *)
type t = {
  name : string;
  analyze_project : Phplang.Project.t -> Report.result;
}

let of_module (module A : ANALYZER) =
  { name = A.name; analyze_project = A.analyze_project }
