(** Ground truth for the synthetic corpus.  Every seeded pattern instance
    leaves a unique marker on its sink line; after printing, the marker is
    located to recover the exact (file, line) the analyzers will report —
    labels that are exact by construction, replacing the paper's manual
    expert verification (DESIGN.md substitution #4). *)

open Secflow

type label =
  | Real_vuln of {
      kind : Vuln.kind;
      vector : Vuln.vector;
      oop_wordpress : bool;
          (** involves WordPress objects/methods — the §V.A OOP count *)
    }
  | Fp_trap of { kind : Vuln.kind; why : string }
      (** safe code that imprecise analysis may flag *)

type seed = {
  seed_id : string;   (** stable across versions for persistent seeds *)
  pattern : string;
  label : label;
  plugin : string;
  file : string;      (** path within the plugin *)
  line : int;         (** resolved sink line in the printed source *)
}

val marker : string -> string
(** The sink-line marker for a seed id; delimiters cannot occur inside PHP
    identifiers, so it never collides with generated names. *)

val is_real : seed -> bool
val kind_of : seed -> Vuln.kind
val vector_of : seed -> Vuln.vector option
val is_oop_wordpress : seed -> bool
val key_of : seed -> Report.key

val line_of_needle : file:string -> needle:string -> string -> int
(** 1-based line of the unique occurrence of [needle]; fails (generator bug)
    when absent or ambiguous. *)
