(** Benign WordPress-flavoured filler code: realistic bulk that cannot
    perturb the calibration — every variable is initialized (no spurious
    register_globals hits), nothing reads a taint source, everything echoed
    is a literal. *)

type unit_ = {
  u_stmts : Phplang.Ast.stmt list;
  u_lines : int;     (** approximate printed lines *)
  u_has_oop : bool;  (** contains a class declaration *)
}

val reset : unit -> unit
(** Reset the fresh-name counter; call once per corpus build for
    determinism. *)

val any : Prng.t -> allow_oop:bool -> unit_
val fill : Prng.t -> allow_oop:bool -> lines:int -> unit_ list

val oop_marker : Prng.t -> unit_
(** A helper class — the marker that makes a file fail under Pixy. *)
