(** Deterministic splittable PRNG (splitmix64-style).  The corpus must be
    reproducible bit-for-bit across runs and platforms. *)

type t

val create : int -> t
val next : t -> int64

val int : t -> int -> int
(** Uniform in [\[0, bound)]; [0] when [bound <= 0]. *)

val bool : t -> bool

val split : t -> salt:int -> t
(** Derive an independent generator; [salt] decorrelates siblings. *)

val pick : t -> 'a list -> 'a
(** Uniform choice; raises [Invalid_argument] on an empty list. *)

val between : t -> int -> int -> int
(** Uniform in [\[lo, hi\]] inclusive. *)
