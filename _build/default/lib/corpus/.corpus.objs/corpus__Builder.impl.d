lib/corpus/builder.ml: Dsl Filler Gt Hashtbl List Pattern Phplang Plan Printf Prng
