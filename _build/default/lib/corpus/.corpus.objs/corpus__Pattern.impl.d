lib/corpus/pattern.ml: Dsl Gt Phplang Printf Prng Secflow Vuln
