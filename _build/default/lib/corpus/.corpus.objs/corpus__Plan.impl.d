lib/corpus/plan.ml: Array Fun List Printf Secflow Vuln
