lib/corpus/dsl.ml: List Phplang
