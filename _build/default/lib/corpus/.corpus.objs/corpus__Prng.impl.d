lib/corpus/prng.ml: Int64 List
