lib/corpus/gt.mli: Report Secflow Vuln
