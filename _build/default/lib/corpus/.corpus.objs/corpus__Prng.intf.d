lib/corpus/prng.mli:
