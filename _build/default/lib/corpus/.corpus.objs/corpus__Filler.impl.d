lib/corpus/filler.ml: Array Dsl List Phplang Printf Prng String
