lib/corpus/builder.mli: Gt Pattern Phplang Plan Prng
