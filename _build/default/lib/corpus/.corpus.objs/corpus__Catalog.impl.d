lib/corpus/catalog.ml: Array Builder Filler Gt List Phplang Plan
