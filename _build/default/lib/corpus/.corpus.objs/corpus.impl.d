lib/corpus/corpus.ml: Builder Catalog Dsl Filler Gt List Pattern Plan Prng
