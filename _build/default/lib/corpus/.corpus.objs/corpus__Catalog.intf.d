lib/corpus/catalog.mli: Gt Phplang Plan
