lib/corpus/filler.mli: Phplang Prng
