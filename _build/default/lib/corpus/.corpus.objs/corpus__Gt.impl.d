lib/corpus/gt.ml: List Printf Report Secflow String Vuln
