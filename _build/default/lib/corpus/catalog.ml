(** The 35-plugin catalog.  Names echo the plugins the paper quotes
    (wp-symposium, mail-subscribe-list, wp-photo-album-plus, qtranslate) plus
    invented ones in the same style.  The first 19 are the OOP plugins
    ("Of the 35 plugins analyzed, 19 are developed in OOP", §V.A). *)

let plugin_names =
  [| (* OOP plugins: 0..18 *)
     "mail-subscribe-list"; "wp-photo-album-plus"; "wp-symposium";
     "event-ticket-desk"; "simple-donation-box"; "member-directory-pro";
     "recipe-card-maker"; "gallery-grid-view"; "forum-digest-mailer";
     "booking-calendar-lite"; "store-locator-map"; "quiz-builder-plus";
     "newsletter-archive"; "download-counter-hub"; "testimonial-slider";
     "job-board-manager"; "faq-accordion-pack"; "poll-widget-deluxe";
     "classified-ads-board";
     (* procedural plugins: 19..34 *)
     "qtranslate"; "contact-form-basic"; "related-posts-simple";
     "social-share-bar"; "custom-footer-text"; "maintenance-mode-page";
     "rss-importer-light"; "search-highlighter"; "broken-link-notifier";
     "image-watermarker"; "visitor-counter-classic"; "sitemap-pinger";
     "comment-guard"; "price-table-shortcode"; "weather-badge";
     "archive-dropdown-plus" |]

let () = assert (Array.length plugin_names = 35)

type plugin_output = {
  po_name : string;
  po_project : Phplang.Project.t;
  po_seeds : Gt.seed list;
}

type corpus = {
  version : Plan.version;
  plugins : plugin_output list;
  seeds : Gt.seed list;  (** all plugins *)
}

(* Mirror of the builder's file layout, used to size the padding.  Checked
   against the real build by a unit test. *)
let base_file_count (instances : Plan.inst list) =
  let count p = List.length (List.filter p instances) in
  let clean =
    count (fun i ->
        i.Plan.in_placement = Plan.Clean_file && i.Plan.in_pattern <> Plan.T_uninit)
  in
  let uninit = count (fun i -> i.Plan.in_pattern = Plan.T_uninit) in
  let oop = count (fun i -> i.Plan.in_placement = Plan.Oop_file) in
  let deep = count (fun i -> i.Plan.in_placement = Plan.Deep_file) in
  let ceil_div a b = (a + b - 1) / b in
  1 (* main *)
  + ceil_div clean 7
  + ceil_div uninit 9
  + (if uninit > 0 then 1 else 0) (* defaults.php *)
  + ceil_div oop 7
  + if deep > 0 then 1 + Builder.chain_len else 0

let generate ?(scale = 1.0) version : corpus =
  Filler.reset ();
  let instances = Plan.instances version in
  let by_plugin = Array.make 35 [] in
  List.iter
    (fun (i : Plan.inst) ->
      by_plugin.(i.Plan.in_plugin) <- i :: by_plugin.(i.Plan.in_plugin))
    instances;
  Array.iteri (fun k l -> by_plugin.(k) <- List.rev l) by_plugin;
  (* padding: bring the total file count up to the paper's corpus size *)
  let base_total =
    Array.fold_left (fun acc insts -> acc + base_file_count insts) 0 by_plugin
  in
  let scaled_files =
    max base_total (int_of_float (scale *. float_of_int (Plan.target_files version)))
  in
  let extra_total = max 0 (scaled_files - base_total) in
  let extras = Array.make 35 (extra_total / 35) in
  for k = 0 to (extra_total mod 35) - 1 do
    extras.(k) <- extras.(k) + 1
  done;
  let file_quota =
    int_of_float
      (scale *. float_of_int (Plan.target_loc version)
      /. float_of_int scaled_files)
  in
  let plugins =
    List.init 35 (fun k ->
        let name = plugin_names.(k) in
        let { Builder.project; seeds } =
          Builder.build ~version ~plugin_name:name
            ~plugin_seed:(1000 * Plan.version_year version + k)
            ~instances:by_plugin.(k) ~extra_files:extras.(k) ~file_quota
        in
        { po_name = name; po_project = project; po_seeds = seeds })
  in
  {
    version;
    plugins;
    seeds = List.concat_map (fun p -> p.po_seeds) plugins;
  }

(** Total files and LOC across the corpus, for the §V.E size report. *)
let stats corpus =
  List.fold_left
    (fun (files, loc) p ->
      ( files + Phplang.Project.file_count p.po_project,
        loc + Phplang.Loc.project_loc p.po_project ))
    (0, 0) corpus.plugins
