(** Assembles one synthetic plugin (one version) from its planned pattern
    instances: groups instances into files by placement, pads every file
    with benign filler to a LOC quota, prints the ASTs, and resolves the
    ground-truth sink lines via the markers. *)

val defaults_path : string
(** Path of the per-plugin defaults file the uninit traps include. *)

val chain_len : int
(** Length of the include chain behind a deep file — one more than
    phpSAFE's [max_include_depth] budget, so exactly the deep file fails. *)

val build_piece : inst:Plan.inst -> rng:Prng.t -> Pattern.piece
(** Instantiate one pattern (exposed for the detectability-contract
    tests). *)

type built = {
  project : Phplang.Project.t;
  seeds : Gt.seed list;
}

val build :
  version:Plan.version ->
  plugin_name:string ->
  plugin_seed:int ->
  instances:Plan.inst list ->
  extra_files:int ->
  file_quota:int ->
  built
(** Build the plugin.  Persistent instances generate identical code in both
    versions because the per-instance RNG is seeded from (id, plugin). *)
