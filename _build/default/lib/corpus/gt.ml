(** Ground truth for the synthetic corpus.

    Every seeded pattern instance leaves a unique marker string
    ([m_<seed-id>]) on its sink line.  After a file is printed, the marker is
    located to recover the exact (file, line) the analyzers will report —
    this replaces the paper's manual expert verification with labels that
    are exact by construction (see DESIGN.md, substitution #4). *)

open Secflow

type label =
  | Real_vuln of {
      kind : Vuln.kind;
      vector : Vuln.vector;
      oop_wordpress : bool;
          (** involves WordPress objects/methods — the §V.A OOP count *)
    }
  | Fp_trap of { kind : Vuln.kind; why : string }
      (** safe code that imprecise analysis may flag; any detection of this
          sink is a false positive *)

type seed = {
  seed_id : string;      (** stable across versions for persistent seeds *)
  pattern : string;      (** pattern name, for per-pattern reporting *)
  label : label;
  plugin : string;
  file : string;         (** path within the plugin *)
  line : int;            (** resolved sink line in the printed source *)
}

(* The "@" delimiters cannot occur inside PHP identifiers, so the marker can
   never collide with a generated variable or class name. *)
let marker seed_id = "@sink:" ^ seed_id ^ "@"

let is_real seed = match seed.label with Real_vuln _ -> true | Fp_trap _ -> false

let kind_of seed =
  match seed.label with
  | Real_vuln { kind; _ } -> kind
  | Fp_trap { kind; _ } -> kind

let vector_of seed =
  match seed.label with Real_vuln { vector; _ } -> Some vector | Fp_trap _ -> None

let is_oop_wordpress seed =
  match seed.label with
  | Real_vuln { oop_wordpress; _ } -> oop_wordpress
  | Fp_trap _ -> false

let key_of seed : Report.key =
  { Report.k_kind = kind_of seed; k_file = seed.file; k_line = seed.line }

(** Line number (1-based) of the unique occurrence of [needle] in [source].
    Raises if the needle is absent or ambiguous — a generator bug. *)
let line_of_needle ~file ~needle source =
  let len = String.length source and nlen = String.length needle in
  let rec find_all i acc =
    if i + nlen > len then List.rev acc
    else if String.sub source i nlen = needle then find_all (i + 1) (i :: acc)
    else find_all (i + 1) acc
  in
  match find_all 0 [] with
  | [ at ] ->
      let line = ref 1 in
      String.iteri (fun j c -> if j < at && c = '\n' then incr line) source;
      !line
  | [] -> failwith (Printf.sprintf "needle %S not found in %s" needle file)
  | hits ->
      failwith
        (Printf.sprintf "needle %S ambiguous in %s (%d hits)" needle file
           (List.length hits))
