(** Deterministic splittable PRNG (splitmix64-style).  The corpus must be
    reproducible bit-for-bit across runs and platforms, so no global
    randomness is used anywhere in generation. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

let bool t = int t 2 = 0

(** Derive an independent generator; [salt] keeps siblings decorrelated. *)
let split t ~salt =
  let s = next t in
  { state = Int64.add s (Int64.mul (Int64.of_int salt) golden) }

let pick t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty"
  | _ -> List.nth xs (int t (List.length xs))

(** Range helper: uniform in [lo, hi] inclusive. *)
let between t lo hi = lo + int t (hi - lo + 1)
