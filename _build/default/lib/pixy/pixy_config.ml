(** Pixy knowledge base — frozen in 2007 (paper §II, §V.A: "Pixy has not
    been updated since 2007", "half of the vulnerabilities it found were due
    to [the register_globals] directive").

    It knows the PHP 4-era builtins: classic superglobals, the standard
    sanitizers, and the [mysql_*] family.  It has no revert modelling, no
    WordPress knowledge, and — crucially — no OOP support at all. *)

open Secflow

type role =
  | Source of Vuln.kind list * Vuln.source
  | Sanitizer of Vuln.kind list
  | Passthrough
  | Join_args

let builtin = function
  | "file_get_contents" | "fgets" | "fread" | "file" ->
      Some (Source ([ Vuln.Xss; Vuln.Sqli ], Vuln.File_read "file read"))
  | "mysql_fetch_assoc" | "mysql_fetch_array" | "mysql_fetch_row"
  | "mysql_result" | "mysql_query" ->
      Some (Source ([ Vuln.Xss ], Vuln.Database "mysql"))
  | "htmlspecialchars" | "htmlentities" | "strip_tags" | "urlencode" ->
      Some (Sanitizer [ Vuln.Xss ])
  | "intval" | "floatval" | "abs" | "count" | "strlen" | "md5" | "sha1" ->
      Some (Sanitizer [ Vuln.Xss; Vuln.Sqli ])
  | "addslashes" | "mysql_escape_string" | "mysql_real_escape_string" ->
      Some (Sanitizer [ Vuln.Sqli ])
  (* 2007-era Pixy does not model reverts: stripslashes just passes through *)
  | "stripslashes" | "stripcslashes" | "trim" | "ltrim" | "rtrim" | "substr"
  | "strtolower" | "strtoupper" | "ucfirst" | "nl2br" | "strval" ->
      Some Passthrough
  | "sprintf" | "implode" | "join" | "str_replace" -> Some Join_args
  | _ -> None

let superglobals = [ "$_GET"; "$_POST"; "$_COOKIE"; "$_REQUEST"; "$_SERVER" ]
let is_superglobal v = List.mem v superglobals

let xss_sink_functions = [ "printf"; "print_r" ]
let sqli_sink_functions = [ "mysql_query"; "mysql_db_query" ]

(** register_globals = 1: an uninitialized variable can be seeded from the
    request, through GET, POST or COOKIE — hence the mixed vector. *)
let uninitialized_source v = Vuln.Uninitialized v
