lib/pixy/cfg.mli: Phplang
