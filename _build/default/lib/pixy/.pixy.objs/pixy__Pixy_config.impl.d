lib/pixy/pixy_config.ml: List Secflow Vuln
