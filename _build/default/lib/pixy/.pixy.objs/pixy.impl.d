lib/pixy/pixy.ml: Cfg Phplang Pixy_analyzer Pixy_config Pixy_taint Secflow
