lib/pixy/pixy_analyzer.mli: Phplang Secflow
