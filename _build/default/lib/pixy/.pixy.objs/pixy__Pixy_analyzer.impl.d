lib/pixy/pixy_analyzer.ml: Array Cfg Hashtbl List Option Phplang Pixy_config Pixy_taint Report Secflow String Vuln
