lib/pixy/pixy_taint.ml: List Map Phplang Pixy_config Secflow String Vuln
