lib/pixy/cfg.ml: Array List Phplang
