lib/pixy/pixy_taint.mli: Map Phplang Secflow Vuln
