(** Pixy's taint lattice and flow-sensitive abstract state (per-variable
    maps joined at control-flow merges).  No revert bookkeeping — a
    2007-era tool. *)

open Secflow

type taint = {
  xss : bool;
  sqli : bool;
  source : Vuln.source option;
  spos : Phplang.Ast.pos option;
}

val clean : taint
val of_source : Vuln.kind list -> Vuln.source -> Phplang.Ast.pos -> taint

val uninitialized : string -> Phplang.Ast.pos -> taint
(** register_globals: an unassigned variable is attacker-controllable. *)

val is_tainted : Vuln.kind -> taint -> bool
val join : taint -> taint -> taint
val join_all : taint list -> taint
val sanitize : Vuln.kind list -> taint -> taint

module VMap : Map.S with type key = string

type state = taint VMap.t
(** A variable absent from the map has never been assigned. *)

val empty_state : state

val read : global_scope:bool -> state -> string -> Phplang.Ast.pos -> taint
(** In the global scope, reading an unassigned variable yields
    {!uninitialized} taint (register_globals = 1). *)

val write : state -> string -> taint -> state
val write_join : state -> string -> taint -> state

val join_state : global_scope:bool -> state -> state -> state
(** Merge-point join; a variable assigned on only one path stays possibly
    uninitialized in the global scope. *)

val equal_state : state -> state -> bool
(** Convergence test on the boolean lattice (sources ignored). *)
