(** §V.E — responsiveness and robustness: corpus size, failed files and
    error counts per tool, and the seconds-per-kLOC unit. *)

type tool_robustness = {
  rb_tool : string;
  rb_failed_files : int;
  rb_errors : int;
}

val of_run : Runner.tool_run -> tool_robustness

type corpus_size = { cs_files : int; cs_loc : int }

val corpus_size : Corpus.t -> corpus_size

val sec_per_kloc : seconds:float -> loc:int -> float
