(** Per-pattern detection breakdown: the drill-down behind Table I, showing
    which seeded code shape produces each tool's detections and false
    positives. *)

type row = {
  pr_pattern : string;
  pr_is_trap : bool;
  pr_seeded : int;
  pr_by_tool : (string * int) list;  (** detected instances per tool *)
}

val compute : Runner.evaluation -> row list
(** Rows sorted vulnerabilities-first, then alphabetically. *)

val print : Format.formatter -> row list -> unit
