lib/evalkit/robustness.ml: Corpus List Matching Report Runner Secflow
