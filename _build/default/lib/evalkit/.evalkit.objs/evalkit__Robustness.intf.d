lib/evalkit/robustness.mli: Corpus Runner
