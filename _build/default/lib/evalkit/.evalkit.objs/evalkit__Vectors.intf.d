lib/evalkit/vectors.mli: Corpus Secflow Vuln
