lib/evalkit/ablation.mli: Format Metrics Phpsafe Runner
