lib/evalkit/runner.ml: Corpus List Matching Phpsafe Pixy Rips Secflow String Sys
