lib/evalkit/runner.mli: Corpus Matching Secflow
