lib/evalkit/tables.mli: Format Runner
