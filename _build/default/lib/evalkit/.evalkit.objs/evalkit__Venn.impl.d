lib/evalkit/venn.ml: Corpus List Matching Set String
