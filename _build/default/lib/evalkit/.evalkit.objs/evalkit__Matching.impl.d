lib/evalkit/matching.ml: Corpus Hashtbl List Map Metrics Report Secflow Set String Vuln
