lib/evalkit/metrics.ml: Float Printf
