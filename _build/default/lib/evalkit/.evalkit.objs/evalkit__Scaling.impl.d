lib/evalkit/scaling.ml: Corpus Format List Robustness Runner Secflow Sys
