lib/evalkit/scaling.mli: Corpus Format Secflow
