lib/evalkit/ablation.ml: Corpus Format List Matching Metrics Phpsafe Runner Secflow
