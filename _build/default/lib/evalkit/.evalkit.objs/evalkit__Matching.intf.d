lib/evalkit/matching.mli: Corpus Map Metrics Report Secflow Set Vuln
