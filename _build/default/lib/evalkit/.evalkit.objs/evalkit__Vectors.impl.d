lib/evalkit/vectors.ml: Corpus List Secflow Set String Vuln
