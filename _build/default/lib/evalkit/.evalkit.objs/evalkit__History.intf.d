lib/evalkit/history.mli: Corpus Format
