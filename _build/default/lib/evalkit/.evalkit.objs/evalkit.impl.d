lib/evalkit/evalkit.ml: Ablation Corpus History Inertia Matching Metrics Pattern_report Robustness Runner Scaling Tables Vectors Venn
