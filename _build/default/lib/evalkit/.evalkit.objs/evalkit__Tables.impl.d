lib/evalkit/tables.ml: Ablation Corpus Format History Inertia List Matching Metrics Printf Report Robustness Runner Secflow Set String Vectors Venn Vuln
