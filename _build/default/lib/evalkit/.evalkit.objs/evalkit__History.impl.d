lib/evalkit/history.ml: Corpus Format List Option Set String
