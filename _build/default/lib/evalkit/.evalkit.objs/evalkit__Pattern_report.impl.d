lib/evalkit/pattern_report.ml: Corpus Format List Map Matching Option Runner String
