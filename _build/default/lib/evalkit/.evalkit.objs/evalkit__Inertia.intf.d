lib/evalkit/inertia.mli: Corpus
