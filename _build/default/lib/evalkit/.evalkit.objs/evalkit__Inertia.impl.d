lib/evalkit/inertia.ml: Corpus List Secflow Set String
