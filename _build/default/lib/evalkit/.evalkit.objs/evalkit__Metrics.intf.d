lib/evalkit/metrics.mli:
