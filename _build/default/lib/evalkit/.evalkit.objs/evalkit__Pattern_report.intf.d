lib/evalkit/pattern_report.mli: Format Runner
