lib/evalkit/venn.mli: Corpus Matching
