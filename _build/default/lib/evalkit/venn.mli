(** Fig. 2: detection overlap between the three tools as the sizes of the
    seven Venn regions plus the "found by no tool" count (the paper's empty
    circle). *)

type regions = {
  only_phpsafe : int;
  only_rips : int;
  only_pixy : int;
  phpsafe_rips : int;  (** in both phpSAFE and RIPS, not Pixy *)
  phpsafe_pixy : int;
  rips_pixy : int;
  all_three : int;
  none : int;          (** real vulnerabilities detected by no tool *)
  union : int;         (** distinct vulnerabilities detected by any tool *)
}

val compute :
  all_real:Corpus.Gt.seed list ->
  phpsafe:Matching.classified ->
  rips:Matching.classified ->
  pixy:Matching.classified ->
  regions
