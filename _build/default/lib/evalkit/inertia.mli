(** §V.D — inertia in fixing vulnerabilities: 2014 vulnerabilities that had
    already been detected (and disclosed) in the 2012 corpus, and the share
    of those that are trivially exploitable. *)

type t = {
  total_2014 : int;
  persisted : int;
  persisted_ratio : float;
  persisted_easy : int;      (** persisted with a GET/POST/COOKIE vector *)
  persisted_easy_ratio : float;  (** share of [persisted] *)
}

val compute :
  union_2012:Corpus.Gt.seed list -> union_2014:Corpus.Gt.seed list -> t
