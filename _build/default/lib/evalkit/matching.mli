(** Matching tool findings against the corpus ground truth — the paper's
    normalized "single repository" comparison (§IV.B step 5), with the
    generator's labels replacing the manual expert verification. *)

open Secflow

(** Finding identity across the whole corpus: plugin-qualified
    (kind, file, line). *)
module Qkey : sig
  type t = { plugin : string; key : Report.key }

  val compare : t -> t -> int
end

module Qset : Set.S with type elt = Qkey.t
module Qmap : Map.S with type key = Qkey.t

val qkey_of_seed : Corpus.Gt.seed -> Qkey.t

(** Per-tool, per-plugin raw results. *)
type tool_output = {
  to_tool : string;
  to_results : (string * Report.result) list;  (** plugin name × result *)
}

val detections : tool_output -> Qset.t
(** De-duplicated detection set over the whole corpus. *)

type classified = {
  cl_tool : string;
  cl_tp : Corpus.Gt.seed list;       (** real vulnerabilities detected *)
  cl_trap_fp : Corpus.Gt.seed list;  (** planned FP traps triggered *)
  cl_stray_fp : Qkey.t list;
      (** detections matching no seed — should stay empty; any entry is an
          analyzer or generator bug worth investigating *)
}

val classify : seeds:Corpus.Gt.seed list -> tool_output -> classified

val detected_union : classified list -> Corpus.Gt.seed list
(** The union of real vulnerabilities found by any tool — the paper's
    reference set for the optimistic Recall. *)

val metrics_for :
  ?kind:Vuln.kind -> union:Corpus.Gt.seed list -> classified -> Metrics.t
(** TP/FP/FN for one tool, optionally restricted to one vulnerability kind;
    FN counts union members the tool missed. *)
