(** Fig. 2: detection overlap between the three tools, as the sizes of the
    seven Venn regions plus the "found by no tool" seeds (the paper's empty
    circle). *)

module S = Set.Make (String)

type regions = {
  only_phpsafe : int;
  only_rips : int;
  only_pixy : int;
  phpsafe_rips : int;      (** in both phpSAFE and RIPS, not Pixy *)
  phpsafe_pixy : int;
  rips_pixy : int;
  all_three : int;
  none : int;              (** real vulns detected by no tool *)
  union : int;
}

let tp_ids (c : Matching.classified) =
  List.fold_left
    (fun acc (s : Corpus.Gt.seed) -> S.add s.Corpus.Gt.seed_id acc)
    S.empty c.Matching.cl_tp

let compute ~(all_real : Corpus.Gt.seed list) ~phpsafe ~rips ~pixy : regions =
  let p = tp_ids phpsafe and r = tp_ids rips and x = tp_ids pixy in
  let union = S.union p (S.union r x) in
  let card_filter pred = S.cardinal (S.filter pred union) in
  let in_ s id = S.mem id s in
  {
    only_phpsafe = card_filter (fun id -> in_ p id && not (in_ r id) && not (in_ x id));
    only_rips = card_filter (fun id -> in_ r id && not (in_ p id) && not (in_ x id));
    only_pixy = card_filter (fun id -> in_ x id && not (in_ p id) && not (in_ r id));
    phpsafe_rips = card_filter (fun id -> in_ p id && in_ r id && not (in_ x id));
    phpsafe_pixy = card_filter (fun id -> in_ p id && in_ x id && not (in_ r id));
    rips_pixy = card_filter (fun id -> in_ r id && in_ x id && not (in_ p id));
    all_three = card_filter (fun id -> in_ p id && in_ r id && in_ x id);
    none =
      List.length
        (List.filter
           (fun (s : Corpus.Gt.seed) -> not (S.mem s.Corpus.Gt.seed_id union))
           all_real);
    union = S.cardinal union;
  }
