(** Binary-classification metrics (paper §IV.A).  FN — and hence Recall — is
    optimistic: the reference set is the union of what the tools detected,
    as in the paper. *)

type t = { tp : int; fp : int; fn : int }

val make : tp:int -> fp:int -> fn:int -> t

val precision : t -> float
(** [TP / (TP + FP)]; NaN when undefined. *)

val recall : t -> float
(** [TP / (TP + FN)]; NaN when undefined. *)

val f_score : t -> float
(** Harmonic mean of precision and recall; NaN when undefined. *)

val pct : float -> string
(** ["83%"] formatting; ["-"] for NaN. *)

val add : t -> t -> t
val zero : t
