(** §V.E — responsiveness and robustness: corpus size, per-tool CPU time,
    files each tool failed to analyze and errors raised. *)

open Secflow

type tool_robustness = {
  rb_tool : string;
  rb_failed_files : int;
  rb_errors : int;
}

let of_run (run : Runner.tool_run) : tool_robustness =
  let failed, errors =
    List.fold_left
      (fun (f, e) (_plugin, (result : Report.result)) ->
        (f + List.length (Report.failed_files result), e + result.Report.errors))
      (0, 0) run.Runner.tr_output.Matching.to_results
  in
  {
    rb_tool = run.Runner.tr_output.Matching.to_tool;
    rb_failed_files = failed;
    rb_errors = errors;
  }

type corpus_size = { cs_files : int; cs_loc : int }

let corpus_size (corpus : Corpus.t) =
  let files, loc = Corpus.stats corpus in
  { cs_files = files; cs_loc = loc }

(** Seconds per thousand lines of code — the paper's responsiveness unit. *)
let sec_per_kloc ~seconds ~loc =
  if loc = 0 then nan else seconds /. (float_of_int loc /. 1000.)
