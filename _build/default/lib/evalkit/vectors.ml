(** Table II: distinct detected vulnerabilities classified by malicious
    input vector, per version, plus the vulnerabilities present (and
    detected) in both versions. *)

open Secflow

module S = Set.Make (String)

type row = {
  vector : Vuln.vector;
  v2012 : int;
  v2014 : int;
  both : int;
}

let ids seeds =
  List.fold_left
    (fun acc (s : Corpus.Gt.seed) -> S.add s.Corpus.Gt.seed_id acc)
    S.empty seeds

let count_vector vec seeds =
  List.length
    (List.filter
       (fun (s : Corpus.Gt.seed) -> Corpus.Gt.vector_of s = Some vec)
       seeds)

(** [union_2012] and [union_2014] are the detected unions of each version.
    The "both" column counts 2014 vulnerabilities whose seed also existed —
    and was detected — in the 2012 corpus. *)
let compute ~(union_2012 : Corpus.Gt.seed list) ~(union_2014 : Corpus.Gt.seed list) :
    row list =
  let ids12 = ids union_2012 in
  let persistent =
    List.filter
      (fun (s : Corpus.Gt.seed) -> S.mem s.Corpus.Gt.seed_id ids12)
      union_2014
  in
  List.map
    (fun vec ->
      {
        vector = vec;
        v2012 = count_vector vec union_2012;
        v2014 = count_vector vec union_2014;
        both = count_vector vec persistent;
      })
    Vuln.all_vectors
