(** Ablation study over phpSAFE's design choices (DESIGN.md experiment E8):
    re-run the full corpus with one feature disabled per variant — or with
    the §VI future-work guard extension enabled — and quantify each
    feature's contribution. *)

type variant = {
  ab_name : string;
  ab_options : Phpsafe.options;
}

val variants : variant list
(** full, no-wordpress-profile, no-uncalled-analysis, no-include-resolution,
    no-revert-modelling, guard-aware. *)

type row = {
  ab_variant : string;
  ab_metrics : Metrics.t;  (** global TP/FP/FN against the default union *)
  ab_oop_tp : int;         (** §V.A WordPress-object detections *)
  ab_failed_files : int;
}

val run : Runner.evaluation -> row list
(** Six whole-corpus phpSAFE runs; FN is computed against the {e default}
    evaluation's union so variants are compared on one reference set. *)

val print : Format.formatter -> ev:Runner.evaluation -> row list -> unit
