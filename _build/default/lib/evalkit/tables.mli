(** Formatting of every table and figure in the paper's evaluation section,
    with the paper-reported values printed alongside the measured ones. *)

val tool_names : string list
(** ["phpSAFE"; "RIPS"; "Pixy"], the paper's column order. *)

val table1 :
  Format.formatter ->
  ev2012:Runner.evaluation ->
  ev2014:Runner.evaluation ->
  unit
(** Table I: TP/FP/Precision/Recall/F-score for XSS, SQLi and Global. *)

val figure2 : Format.formatter -> ev:Runner.evaluation -> unit
(** Fig. 2 data: the seven Venn regions plus the empty circle. *)

val table2 :
  Format.formatter ->
  ev2012:Runner.evaluation ->
  ev2014:Runner.evaluation ->
  unit
(** Table II: distinct vulnerabilities by malicious input vector. *)

val table3 :
  Format.formatter ->
  ev2012:Runner.evaluation ->
  ev2014:Runner.evaluation ->
  unit
(** Table III: detection time of all plugins in seconds. *)

val oop_summary : Format.formatter -> ev:Runner.evaluation -> unit
(** §V.A: WordPress-object vulnerabilities per tool. *)

val inertia :
  Format.formatter ->
  ev2012:Runner.evaluation ->
  ev2014:Runner.evaluation ->
  unit
(** §V.D: persistence of disclosed vulnerabilities. *)

val robustness : Format.formatter -> ev:Runner.evaluation -> unit
(** §V.E: corpus size, failed files, error counts. *)

val stray_report : Format.formatter -> ev:Runner.evaluation -> unit
(** Unplanned detections (matching no seed) — prints nothing when, as
    expected, there are none. *)

val full_report :
  ?with_ablation:bool ->
  Format.formatter ->
  ev2012:Runner.evaluation ->
  ev2014:Runner.evaluation ->
  unit
(** Everything above in the paper's order, plus the E9 history table;
    [with_ablation] adds the E8 study (six extra phpSAFE runs per
    version). *)
