(** Per-plugin security evolution between corpus versions — the paper's
    future-work item on historic data (§VI). *)

type plugin_history = {
  ph_plugin : string;
  ph_2012 : int;        (** detected in the 2012 version *)
  ph_2014 : int;        (** detected in the 2014 version *)
  ph_fixed : int;       (** present in 2012, gone in 2014 *)
  ph_persisted : int;   (** detected in both *)
  ph_introduced : int;  (** new in 2014 *)
}

val compute :
  union_2012:Corpus.Gt.seed list ->
  union_2014:Corpus.Gt.seed list ->
  plugin_history list

val totals : plugin_history list -> int * int * int
(** (fixed, persisted, introduced) over all plugins. *)

val print : Format.formatter -> plugin_history list -> unit
