(** Per-pattern detection breakdown: for each seeded code shape, how many
    instances exist and how many each tool detected.  The drill-down behind
    Table I — it shows {e which} behaviours produce each tool's numbers
    (wpdb flows for phpSAFE's lead, register_globals for Pixy's tail, the
    guard/revert traps for the false positives). *)

module SM = Map.Make (String)

type row = {
  pr_pattern : string;
  pr_is_trap : bool;
  pr_seeded : int;
  pr_by_tool : (string * int) list;  (** detected instances per tool *)
}

let compute (ev : Runner.evaluation) : row list =
  let seeds = ev.Runner.ev_corpus.Corpus.seeds in
  let base =
    List.fold_left
      (fun m (s : Corpus.Gt.seed) ->
        let key = s.Corpus.Gt.pattern in
        let cur =
          Option.value (SM.find_opt key m)
            ~default:(not (Corpus.Gt.is_real s), 0, SM.empty)
        in
        let is_trap, n, per_tool = cur in
        SM.add key (is_trap, n + 1, per_tool) m)
      SM.empty seeds
  in
  let with_tools =
    List.fold_left
      (fun m (c : Matching.classified) ->
        List.fold_left
          (fun m (s : Corpus.Gt.seed) ->
            let key = s.Corpus.Gt.pattern in
            match SM.find_opt key m with
            | None -> m
            | Some (is_trap, n, per_tool) ->
                let hits =
                  Option.value (SM.find_opt c.Matching.cl_tool per_tool) ~default:0
                in
                SM.add key
                  (is_trap, n, SM.add c.Matching.cl_tool (hits + 1) per_tool)
                  m)
          m
          (c.Matching.cl_tp @ c.Matching.cl_trap_fp))
      base ev.Runner.ev_classified
  in
  let tool_names =
    List.map (fun (c : Matching.classified) -> c.Matching.cl_tool) ev.Runner.ev_classified
  in
  SM.bindings with_tools
  |> List.map (fun (pattern, (is_trap, seeded, per_tool)) ->
         {
           pr_pattern = pattern;
           pr_is_trap = is_trap;
           pr_seeded = seeded;
           pr_by_tool =
             List.map
               (fun t -> (t, Option.value (SM.find_opt t per_tool) ~default:0))
               tool_names;
         })
  |> List.sort (fun a b ->
         match compare a.pr_is_trap b.pr_is_trap with
         | 0 -> compare a.pr_pattern b.pr_pattern
         | c -> c)

let print ppf (rows : row list) =
  Format.fprintf ppf "@.== per-pattern detection breakdown ==@.";
  (match rows with
  | r :: _ ->
      Format.fprintf ppf "%-26s %8s" "pattern" "seeded";
      List.iter (fun (t, _) -> Format.fprintf ppf " %8s" t) r.pr_by_tool;
      Format.fprintf ppf "@."
  | [] -> ());
  List.iter
    (fun r ->
      Format.fprintf ppf "%-26s %8d" r.pr_pattern r.pr_seeded;
      List.iter (fun (_, n) -> Format.fprintf ppf " %8d" n) r.pr_by_tool;
      Format.fprintf ppf "@.")
    rows
