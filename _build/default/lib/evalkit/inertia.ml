(** §V.D — inertia in fixing vulnerabilities: how many of the
    vulnerabilities detected in the 2014 versions were already present (and
    disclosed) in the 2012 versions, and how many of those are trivially
    exploitable (GET/POST/COOKIE). *)

module S = Set.Make (String)

type t = {
  total_2014 : int;          (** distinct vulns detected in 2014 *)
  persisted : int;           (** of those, already detected in 2012 *)
  persisted_ratio : float;
  persisted_easy : int;      (** persisted and directly exploitable *)
  persisted_easy_ratio : float;  (** share of persisted *)
}

let compute ~(union_2012 : Corpus.Gt.seed list) ~(union_2014 : Corpus.Gt.seed list) : t =
  let ids12 =
    List.fold_left
      (fun acc (s : Corpus.Gt.seed) -> S.add s.Corpus.Gt.seed_id acc)
      S.empty union_2012
  in
  let persisted =
    List.filter
      (fun (s : Corpus.Gt.seed) -> S.mem s.Corpus.Gt.seed_id ids12)
      union_2014
  in
  let easy =
    List.filter
      (fun (s : Corpus.Gt.seed) ->
        match Corpus.Gt.vector_of s with
        | Some v -> Secflow.Vuln.vector_is_direct v
        | None -> false)
      persisted
  in
  let total = List.length union_2014 in
  let np = List.length persisted in
  let ne = List.length easy in
  {
    total_2014 = total;
    persisted = np;
    persisted_ratio = (if total = 0 then 0. else float_of_int np /. float_of_int total);
    persisted_easy = ne;
    persisted_easy_ratio = (if np = 0 then 0. else float_of_int ne /. float_of_int np);
  }
