(** Binary-classification metrics (paper §IV.A): Precision, Recall and
    F-score over TP/FP/FN counts.

    Following the paper's convention, FN is {e optimistic}: the reference
    set of vulnerabilities is the union of what the tools detected (plus
    manual confirmation), not an exhaustive audit, so "the value of the
    Recall metric is also optimistic". *)

type t = {
  tp : int;
  fp : int;
  fn : int;
}

let make ~tp ~fp ~fn = { tp; fp; fn }

let precision m =
  if m.tp + m.fp = 0 then nan else float_of_int m.tp /. float_of_int (m.tp + m.fp)

let recall m =
  if m.tp + m.fn = 0 then nan else float_of_int m.tp /. float_of_int (m.tp + m.fn)

let f_score m =
  let p = precision m and r = recall m in
  if Float.is_nan p || Float.is_nan r || p +. r = 0. then nan
  else 2. *. p *. r /. (p +. r)

let pct x = if Float.is_nan x then "-" else Printf.sprintf "%.0f%%" (100. *. x)

let add a b = { tp = a.tp + b.tp; fp = a.fp + b.fp; fn = a.fn + b.fn }
let zero = { tp = 0; fp = 0; fn = 0 }
