(** Ablation study over phpSAFE's design choices (DESIGN.md, experiment E8).

    Each variant disables one feature the paper credits for phpSAFE's
    results — or enables the path-sensitivity extension from its future
    work — and re-runs the full corpus.  The deltas quantify how much each
    feature contributes:

    - {b no-wordpress-profile}: generic PHP configuration only (what RIPS
      knows).  Expected: the 151/179 OOP detections disappear (§V.A).
    - {b no-uncalled-analysis}: skip functions never called from plugin code
      (what Pixy does).  Expected: hook/callback vulnerabilities are lost
      (§III.B "a very important aspect of security tools targeting plugin
      code").
    - {b no-include-resolution}: analyze files in isolation.  Expected: the
      memory budget never trips (the deep files are recovered) but
      cross-file flows are lost.
    - {b no-revert-modelling}: drop [stripslashes] & co.  Expected: the
      revert false positives disappear, but so do the §V.C
      wp-photo-album-plus-style detections where [stripslashes] sits on the
      tainted path.
    - {b guard-aware (future work)}: treat [if (!is_numeric($x)) exit;]
      as validation.  Expected: the numeric-guard false positives disappear
      with no true-positive loss. *)

type variant = {
  ab_name : string;
  ab_options : Phpsafe.options;
}

let variants : variant list =
  let d = Phpsafe.default_options in
  [
    { ab_name = "full (paper configuration)"; ab_options = d };
    { ab_name = "no-wordpress-profile";
      ab_options = { d with Phpsafe.config = Phpsafe.Config.generic_php } };
    { ab_name = "no-uncalled-analysis";
      ab_options = { d with Phpsafe.analyze_uncalled = false } };
    { ab_name = "no-include-resolution";
      ab_options = { d with Phpsafe.resolve_includes = false } };
    { ab_name = "no-revert-modelling";
      ab_options =
        { d with
          Phpsafe.config =
            { Phpsafe.Wordpress.default_config with Phpsafe.Config.reverts = [] } } };
    { ab_name = "guard-aware (future work)";
      ab_options = { d with Phpsafe.respect_guards = true } };
  ]

type row = {
  ab_variant : string;
  ab_metrics : Metrics.t;          (** global TP/FP/FN vs the full union *)
  ab_oop_tp : int;                 (** §V.A WordPress-object detections *)
  ab_failed_files : int;
}

(** Run every variant over [corpus]; FN is computed against the union of the
    {e default} three-tool evaluation [ev] so that variants are compared on
    the same reference set. *)
let run (ev : Runner.evaluation) : row list =
  let corpus = ev.Runner.ev_corpus in
  List.map
    (fun v ->
      let tool : Secflow.Tool.t =
        {
          Secflow.Tool.name = "phpSAFE[" ^ v.ab_name ^ "]";
          analyze_project =
            (fun p -> Phpsafe.analyze_project ~opts:v.ab_options p);
        }
      in
      let run = Runner.run_tool tool corpus in
      let classified =
        Matching.classify ~seeds:corpus.Corpus.seeds run.Runner.tr_output
      in
      let metrics =
        Matching.metrics_for ~union:ev.Runner.ev_union classified
      in
      let oop_tp =
        List.length
          (List.filter Corpus.Gt.is_oop_wordpress classified.Matching.cl_tp)
      in
      let failed =
        List.fold_left
          (fun acc (_, (r : Secflow.Report.result)) ->
            acc + List.length (Secflow.Report.failed_files r))
          0 run.Runner.tr_output.Matching.to_results
      in
      { ab_variant = v.ab_name; ab_metrics = metrics; ab_oop_tp = oop_tp;
        ab_failed_files = failed })
    variants

let print ppf ~(ev : Runner.evaluation) rows =
  Format.fprintf ppf "@.== E8: phpSAFE ablation study, version %s ==@."
    (Corpus.Plan.version_to_string ev.Runner.ev_version);
  Format.fprintf ppf "%-28s %5s %5s %5s %6s %6s %8s %7s@." "variant" "TP" "FP"
    "FN" "Prec" "Rec" "OOP-TP" "failed";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-28s %5d %5d %5d %6s %6s %8d %7d@." r.ab_variant
        r.ab_metrics.Metrics.tp r.ab_metrics.Metrics.fp r.ab_metrics.Metrics.fn
        (Metrics.pct (Metrics.precision r.ab_metrics))
        (Metrics.pct (Metrics.recall r.ab_metrics))
        r.ab_oop_tp r.ab_failed_files)
    rows
