(** Drives the three analyzers over a corpus version and collects raw
    results plus CPU time (paper §IV.B step 4: automated execution of each
    tool on all plugin files; §V.E responsiveness). *)

type tool_run = {
  tr_output : Matching.tool_output;
  tr_seconds : float;  (** CPU seconds to analyze the whole corpus *)
}

type evaluation = {
  ev_version : Corpus.Plan.version;
  ev_corpus : Corpus.t;
  ev_runs : tool_run list;
  ev_classified : Matching.classified list;
  ev_union : Corpus.Gt.seed list;  (** union of detected real vulns *)
}

let default_tools () : Secflow.Tool.t list =
  [ Phpsafe.tool; Rips.tool; Pixy.tool ]

let run_tool (tool : Secflow.Tool.t) (corpus : Corpus.t) : tool_run =
  let t0 = Sys.time () in
  let results =
    List.map
      (fun (p : Corpus.Catalog.plugin_output) ->
        (p.Corpus.Catalog.po_name,
         tool.Secflow.Tool.analyze_project p.Corpus.Catalog.po_project))
      corpus.Corpus.plugins
  in
  let seconds = Sys.time () -. t0 in
  {
    tr_output = { Matching.to_tool = tool.Secflow.Tool.name; to_results = results };
    tr_seconds = seconds;
  }

let evaluate ?(tools = default_tools ()) version : evaluation =
  let corpus = Corpus.generate version in
  let runs = List.map (fun t -> run_tool t corpus) tools in
  let classified =
    List.map
      (fun r -> Matching.classify ~seeds:corpus.Corpus.seeds r.tr_output)
      runs
  in
  let union = Matching.detected_union classified in
  {
    ev_version = version;
    ev_corpus = corpus;
    ev_runs = runs;
    ev_classified = classified;
    ev_union = union;
  }

let classified_for ev tool_name =
  List.find
    (fun (c : Matching.classified) -> String.equal c.Matching.cl_tool tool_name)
    ev.ev_classified

let run_for ev tool_name =
  List.find
    (fun r -> String.equal r.tr_output.Matching.to_tool tool_name)
    ev.ev_runs
