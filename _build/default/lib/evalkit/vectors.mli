(** Table II: distinct detected vulnerabilities classified by malicious
    input vector per version, plus those detected in both versions. *)

open Secflow

type row = {
  vector : Vuln.vector;
  v2012 : int;
  v2014 : int;
  both : int;  (** detected in 2014 and already detected in 2012 *)
}

val compute :
  union_2012:Corpus.Gt.seed list ->
  union_2014:Corpus.Gt.seed list ->
  row list
(** One row per {!Vuln.vector}, in the paper's order. *)
