(** Per-plugin security evolution between corpus versions — the paper's
    future-work item "study the evolution of plugin security and plugin
    updates over time by enabling historic data in phpSAFE" (§VI).

    For each plugin, the detected vulnerabilities of both versions are
    joined on seed identity, yielding how many were fixed, how many
    persisted (disclosed but never fixed, §V.D) and how many were newly
    introduced. *)

module S = Set.Make (String)

type plugin_history = {
  ph_plugin : string;
  ph_2012 : int;        (** detected in the 2012 version *)
  ph_2014 : int;        (** detected in the 2014 version *)
  ph_fixed : int;       (** present in 2012, gone in 2014 *)
  ph_persisted : int;   (** present and detected in both *)
  ph_introduced : int;  (** new in 2014 *)
}

let ids_of seeds =
  List.fold_left
    (fun acc (s : Corpus.Gt.seed) -> S.add s.Corpus.Gt.seed_id acc)
    S.empty seeds

let by_plugin (union : Corpus.Gt.seed list) =
  List.fold_left
    (fun m (s : Corpus.Gt.seed) ->
      let cur = Option.value (List.assoc_opt s.Corpus.Gt.plugin m) ~default:[] in
      (s.Corpus.Gt.plugin, s :: cur) :: List.remove_assoc s.Corpus.Gt.plugin m)
    [] union

let plugin_names_of m = S.of_list (List.map fst m)

(** Join the two detected unions per plugin. *)
let compute ~(union_2012 : Corpus.Gt.seed list) ~(union_2014 : Corpus.Gt.seed list)
    : plugin_history list =
  let m12 = by_plugin union_2012 and m14 = by_plugin union_2014 in
  let plugins =
    S.elements (S.union (plugin_names_of m12) (plugin_names_of m14))
  in
  List.map
    (fun plugin ->
      let s12 = Option.value (List.assoc_opt plugin m12) ~default:[] in
      let s14 = Option.value (List.assoc_opt plugin m14) ~default:[] in
      let i12 = ids_of s12 and i14 = ids_of s14 in
      {
        ph_plugin = plugin;
        ph_2012 = S.cardinal i12;
        ph_2014 = S.cardinal i14;
        ph_fixed = S.cardinal (S.diff i12 i14);
        ph_persisted = S.cardinal (S.inter i12 i14);
        ph_introduced = S.cardinal (S.diff i14 i12);
      })
    plugins

(** Aggregate over all plugins. *)
let totals (rows : plugin_history list) =
  List.fold_left
    (fun (f, p, i) r -> (f + r.ph_fixed, p + r.ph_persisted, i + r.ph_introduced))
    (0, 0, 0) rows

let print ppf rows =
  Format.fprintf ppf "@.== E9: per-plugin security evolution 2012 -> 2014 ==@.";
  Format.fprintf ppf "%-26s %6s %6s %6s %10s %11s@." "plugin" "2012" "2014"
    "fixed" "persisted" "introduced";
  let sorted =
    List.sort
      (fun a b -> compare (b.ph_2012 + b.ph_2014) (a.ph_2012 + a.ph_2014))
      rows
  in
  List.iter
    (fun r ->
      Format.fprintf ppf "%-26s %6d %6d %6d %10d %11d@." r.ph_plugin r.ph_2012
        r.ph_2014 r.ph_fixed r.ph_persisted r.ph_introduced)
    sorted;
  let fixed, persisted, introduced = totals rows in
  Format.fprintf ppf "%-26s %6s %6s %6d %10d %11d@." "TOTAL" "" "" fixed
    persisted introduced
