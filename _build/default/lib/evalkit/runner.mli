(** Drives the analyzers over a corpus version and collects raw results and
    CPU time (paper §IV.B step 4, §V.E responsiveness). *)

type tool_run = {
  tr_output : Matching.tool_output;
  tr_seconds : float;  (** CPU seconds to analyze the whole corpus *)
}

type evaluation = {
  ev_version : Corpus.Plan.version;
  ev_corpus : Corpus.t;
  ev_runs : tool_run list;
  ev_classified : Matching.classified list;
  ev_union : Corpus.Gt.seed list;  (** union of detected real vulns *)
}

val default_tools : unit -> Secflow.Tool.t list
(** phpSAFE, RIPS, Pixy — the paper's §IV.B tool set. *)

val run_tool : Secflow.Tool.t -> Corpus.t -> tool_run

val evaluate : ?tools:Secflow.Tool.t list -> Corpus.Plan.version -> evaluation
(** Generate the corpus, run every tool, classify against ground truth and
    compute the detected union. *)

val classified_for : evaluation -> string -> Matching.classified
(** Lookup by tool name; raises [Not_found] for unknown tools. *)

val run_for : evaluation -> string -> tool_run
