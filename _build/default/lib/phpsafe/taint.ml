(** Taint values for phpSAFE's analysis stage (paper §III.C).

    A taint value records, per vulnerability kind, whether the data is
    currently attacker-controlled, and — for the function-summary analysis —
    {e which formal parameters} the value depends on.  Sanitization clears
    the live bits but remembers them in the [was_*] fields so that {e revert}
    functions ([stripslashes] & co., §III.A) can restore them, reproducing
    phpSAFE's revert semantics. *)

open Secflow

module Int_set = Set.Make (Int)

type t = {
  xss : bool;
  sqli : bool;
  was_xss : bool;   (** tainted before sanitization (revertible) *)
  was_sqli : bool;
  deps_xss : Int_set.t;   (** parameter indices whose XSS taint reaches here *)
  deps_sqli : Int_set.t;
  was_deps_xss : Int_set.t;
  was_deps_sqli : Int_set.t;
  source : (Vuln.source * Phplang.Ast.pos) option;
  trace : Report.step list;  (** most recent first; bounded *)
}

let max_trace_len = 16

let untainted =
  {
    xss = false;
    sqli = false;
    was_xss = false;
    was_sqli = false;
    deps_xss = Int_set.empty;
    deps_sqli = Int_set.empty;
    was_deps_xss = Int_set.empty;
    was_deps_sqli = Int_set.empty;
    source = None;
    trace = [];
  }

(** Fresh taint from a configured source. *)
let of_source ~kinds ~source ~pos =
  {
    untainted with
    xss = List.mem Vuln.Xss kinds;
    sqli = List.mem Vuln.Sqli kinds;
    source = Some (source, pos);
  }

(** Symbolic taint of formal parameter [i] during summary analysis. *)
let of_param i =
  {
    untainted with
    deps_xss = Int_set.singleton i;
    deps_sqli = Int_set.singleton i;
  }

let is_tainted kind t =
  match kind with Vuln.Xss -> t.xss | Vuln.Sqli -> t.sqli

let deps kind t =
  match kind with Vuln.Xss -> t.deps_xss | Vuln.Sqli -> t.deps_sqli

let has_deps t = not (Int_set.is_empty t.deps_xss && Int_set.is_empty t.deps_sqli)
let any_tainted t = t.xss || t.sqli
let interesting t = any_tainted t || has_deps t

let join a b =
  {
    xss = a.xss || b.xss;
    sqli = a.sqli || b.sqli;
    was_xss = a.was_xss || b.was_xss;
    was_sqli = a.was_sqli || b.was_sqli;
    deps_xss = Int_set.union a.deps_xss b.deps_xss;
    deps_sqli = Int_set.union a.deps_sqli b.deps_sqli;
    was_deps_xss = Int_set.union a.was_deps_xss b.was_deps_xss;
    was_deps_sqli = Int_set.union a.was_deps_sqli b.was_deps_sqli;
    source =
      (match (a.source, b.source) with
      | (Some _ as s), _ -> s
      | None, s -> s);
    trace =
      (* keep the trace of the "more tainted" operand *)
      (if any_tainted a || has_deps a then a.trace else b.trace);
  }

let join_all = List.fold_left join untainted

(** Neutralise [kind], remembering the pre-sanitization state. *)
let sanitize kind t =
  match kind with
  | Vuln.Xss ->
      {
        t with
        xss = false;
        was_xss = t.was_xss || t.xss;
        deps_xss = Int_set.empty;
        was_deps_xss = Int_set.union t.was_deps_xss t.deps_xss;
      }
  | Vuln.Sqli ->
      {
        t with
        sqli = false;
        was_sqli = t.was_sqli || t.sqli;
        deps_sqli = Int_set.empty;
        was_deps_sqli = Int_set.union t.was_deps_sqli t.deps_sqli;
      }

let sanitize_kinds kinds t = List.fold_left (fun t k -> sanitize k t) t kinds

(** Revert function semantics: whatever was sanitized becomes live again. *)
let revert t =
  {
    t with
    xss = t.xss || t.was_xss;
    sqli = t.sqli || t.was_sqli;
    deps_xss = Int_set.union t.deps_xss t.was_deps_xss;
    deps_sqli = Int_set.union t.deps_sqli t.was_deps_sqli;
  }

(** Numeric / boolean results carry no taint at all. *)
let scrub _t = untainted

let push_step ~var ~pos ~note t =
  let step = { Report.step_var = var; step_pos = pos; step_note = note } in
  let trace =
    if List.length t.trace >= max_trace_len then t.trace else step :: t.trace
  in
  { t with trace }

let source_of t =
  match t.source with
  | Some (s, pos) -> (s, pos)
  | None -> (Vuln.Unknown_source, Phplang.Ast.dummy_pos)

let pp ppf t =
  Format.fprintf ppf "{xss=%b; sqli=%b; was=(%b,%b); deps=(%d,%d)}" t.xss
    t.sqli t.was_xss t.was_sqli
    (Int_set.cardinal t.deps_xss)
    (Int_set.cardinal t.deps_sqli)
