(** Variable state — phpSAFE's [parser_variables] analogue (paper §III.C).

    A scope holds locals; the shared global table models WordPress loading
    every plugin file into one runtime.  [global $x] declarations alias a
    name into the global table; [$this] properties are stored per class as
    ["Class::$prop"] so taint crosses method boundaries (§III.E). *)

module S : Set.S with type elt = string

type t = {
  locals : (string, Taint.t) Hashtbl.t;
  globals : (string, Taint.t) Hashtbl.t;
  mutable declared_global : S.t;
  top_level : bool;
  class_of : (string, string) Hashtbl.t;  (** variable -> class binding *)
  current_class : string option;
  aliases : (string, string) Hashtbl.t;
      (** [$a =& $b] reference bindings (the Pixy [-A] analogue, §IV.B) *)
}

val create_toplevel : (string, Taint.t) Hashtbl.t -> t
(** Global scope: locals {e are} the global table. *)

val create_scope : ?current_class:string -> (string, Taint.t) Hashtbl.t -> t
(** Fresh function/method scope sharing the given global table. *)

val declare_global : t -> string -> unit

val representative : t -> string -> string
(** Follow the reference chain to the variable actually holding the cell. *)

val alias : t -> string -> string -> unit
(** [alias t a b] makes [$a] a reference to [$b]'s cell. *)

val get : t -> string -> Taint.t
val mem : t -> string -> bool
val set : t -> string -> Taint.t -> unit

val set_join : t -> string -> Taint.t -> unit
(** Join into the current value — assigning through one array slot taints
    the whole array conservatively. *)

val unset : t -> string -> unit

val bind_class : t -> string -> string -> unit
val class_binding : t -> string -> string option
(** [$this] resolves to [current_class]. *)

val this_prop_key : t -> string -> string option
(** Global-table key for [$this->prop], when a current class is set. *)

val static_prop_key : string -> string -> string

val get_global_key : t -> string -> Taint.t
val set_global_key : t -> string -> Taint.t -> unit
val set_global_key_join : t -> string -> Taint.t -> unit
