(** Analysis resources beyond the findings themselves (paper §III.D: the
    results-processing stage exposes "the variables (vulnerable variables,
    output variables and all the other variables), functions, PHP files
    included, tokens (the complete AST) and debug information" to help
    practitioners review and fix code). *)

module S = Set.Make (String)
module A = Phplang.Ast

type t = {
  st_files : int;
  st_tokens : int;             (** significant tokens over all files *)
  st_loc : int;
  st_functions : int;          (** free functions *)
  st_classes : int;
  st_methods : int;
  st_variables : int;          (** distinct variable names *)
  st_superglobal_reads : int;  (** occurrences of configured input vectors *)
  st_echo_sinks : int;         (** echo/print output points *)
  st_includes : int;           (** include/require expressions *)
}

let empty =
  { st_files = 0; st_tokens = 0; st_loc = 0; st_functions = 0; st_classes = 0;
    st_methods = 0; st_variables = 0; st_superglobal_reads = 0;
    st_echo_sinks = 0; st_includes = 0 }

type acc = {
  mutable functions : int;
  mutable classes : int;
  mutable methods : int;
  mutable vars : S.t;
  mutable sg_reads : int;
  mutable echoes : int;
  mutable includes : int;
}

let superglobals =
  [ "$_GET"; "$_POST"; "$_COOKIE"; "$_REQUEST"; "$_SERVER"; "$_FILES" ]

let rec visit_expr acc (e : A.expr) =
  (match e.A.e with
  | A.Var v ->
      acc.vars <- S.add v acc.vars;
      if List.mem v superglobals then acc.sg_reads <- acc.sg_reads + 1
  | A.PrintE _ -> acc.echoes <- acc.echoes + 1
  | A.IncludeE _ -> acc.includes <- acc.includes + 1
  | A.Closure c -> List.iter (visit_stmt acc) c.A.cl_body
  | _ -> ());
  iter_sub_exprs acc e

and iter_sub_exprs acc (e : A.expr) =
  let ve = visit_expr acc in
  match e.A.e with
  | A.Assign (l, r) | A.AssignRef (l, r) | A.OpAssign (_, l, r) | A.Bin (_, l, r)
    ->
      ve l;
      ve r
  | A.Un (_, x) | A.CastE (_, x) | A.EmptyE x | A.PrintE x | A.Prop (x, _)
  | A.IncludeE (_, x) ->
      ve x
  | A.Ternary (c, t, e2) ->
      ve c;
      Option.iter ve t;
      ve e2
  | A.ArrayGet (b, i) ->
      ve b;
      Option.iter ve i
  | A.ArrayLit items ->
      List.iter
        (fun (k, v) ->
          Option.iter ve k;
          ve v)
        items
  | A.Call (_, args) | A.New (_, args) | A.StaticCall (_, _, args) ->
      List.iter ve args
  | A.MethodCall (o, _, args) ->
      ve o;
      List.iter ve args
  | A.Isset es -> List.iter ve es
  | A.Exit x -> Option.iter ve x
  | A.Interp parts ->
      List.iter (function A.IExpr x -> ve x | A.ILit _ -> ()) parts
  | A.ListAssign (slots, rhs) ->
      List.iter (Option.iter ve) slots;
      ve rhs
  | A.Null | A.True | A.False | A.Int _ | A.Float _ | A.Str _ | A.Var _
  | A.StaticProp _ | A.ClassConst _ | A.Const _ | A.Closure _ ->
      ()

and visit_stmt acc (s : A.stmt) =
  match s.A.s with
  | A.Expr e | A.Throw e -> visit_expr acc e
  | A.Echo es ->
      acc.echoes <- acc.echoes + 1;
      List.iter (visit_expr acc) es
  | A.If (branches, els) ->
      List.iter
        (fun (c, b) ->
          visit_expr acc c;
          List.iter (visit_stmt acc) b)
        branches;
      Option.iter (List.iter (visit_stmt acc)) els
  | A.While (c, b) ->
      visit_expr acc c;
      List.iter (visit_stmt acc) b
  | A.DoWhile (b, c) ->
      List.iter (visit_stmt acc) b;
      visit_expr acc c
  | A.For (i, c, u, b) ->
      List.iter (visit_expr acc) i;
      List.iter (visit_expr acc) c;
      List.iter (visit_expr acc) u;
      List.iter (visit_stmt acc) b
  | A.Foreach (subject, binding, b) ->
      visit_expr acc subject;
      (match binding with
      | A.ForeachValue v -> visit_expr acc v
      | A.ForeachKeyValue (k, v) ->
          visit_expr acc k;
          visit_expr acc v);
      List.iter (visit_stmt acc) b
  | A.Switch (subject, cases) ->
      visit_expr acc subject;
      List.iter (fun (c : A.case) -> List.iter (visit_stmt acc) c.A.case_body) cases
  | A.Return e -> Option.iter (visit_expr acc) e
  | A.Global names -> List.iter (fun v -> acc.vars <- S.add v acc.vars) names
  | A.StaticVar vars ->
      List.iter
        (fun (v, init) ->
          acc.vars <- S.add v acc.vars;
          Option.iter (visit_expr acc) init)
        vars
  | A.Unset es -> List.iter (visit_expr acc) es
  | A.Block b -> List.iter (visit_stmt acc) b
  | A.FuncDef f ->
      acc.functions <- acc.functions + 1;
      List.iter
        (fun (p : A.param) -> acc.vars <- S.add p.A.p_name acc.vars)
        f.A.f_params;
      List.iter (visit_stmt acc) f.A.f_body
  | A.ClassDef c ->
      acc.classes <- acc.classes + 1;
      acc.methods <- acc.methods + List.length c.A.c_methods;
      List.iter
        (fun (m : A.method_def) -> List.iter (visit_stmt acc) m.A.m_func.A.f_body)
        c.A.c_methods
  | A.TryCatch (b, catches) ->
      List.iter (visit_stmt acc) b;
      List.iter
        (fun (c : A.catch) -> List.iter (visit_stmt acc) c.A.catch_body)
        catches
  | A.InlineHtml _ | A.Nop | A.Break | A.Continue -> ()

(** Gather the §III.D resource statistics over a whole project.  Files that
    fail to parse contribute their token and LOC counts only. *)
let of_project (project : Phplang.Project.t) : t =
  let acc =
    { functions = 0; classes = 0; methods = 0; vars = S.empty; sg_reads = 0;
      echoes = 0; includes = 0 }
  in
  let tokens = ref 0 and loc = ref 0 in
  List.iter
    (fun (f : Phplang.Project.file) ->
      loc := !loc + Phplang.Loc.count f.Phplang.Project.source;
      (match Phplang.Lexer.tokenize_significant f.Phplang.Project.source with
      | toks -> tokens := !tokens + List.length toks
      | exception Phplang.Lexer.Error _ -> ());
      match
        Phplang.Parser.parse_source ~file:f.Phplang.Project.path
          f.Phplang.Project.source
      with
      | prog -> List.iter (visit_stmt acc) prog
      | exception Phplang.Parser.Parse_error _ -> ())
    project.Phplang.Project.files;
  {
    st_files = Phplang.Project.file_count project;
    st_tokens = !tokens;
    st_loc = !loc;
    st_functions = acc.functions;
    st_classes = acc.classes;
    st_methods = acc.methods;
    st_variables = S.cardinal acc.vars;
    st_superglobal_reads = acc.sg_reads;
    st_echo_sinks = acc.echoes;
    st_includes = acc.includes;
  }

let pp ppf t =
  Format.fprintf ppf
    "files=%d tokens=%d loc=%d functions=%d classes=%d methods=%d \
     variables=%d superglobal-reads=%d echo-sinks=%d includes=%d"
    t.st_files t.st_tokens t.st_loc t.st_functions t.st_classes t.st_methods
    t.st_variables t.st_superglobal_reads t.st_echo_sinks t.st_includes
