lib/phpsafe/joomla.ml: Config Secflow Vuln
