lib/phpsafe/summary.mli: Phplang Secflow Taint Vuln
