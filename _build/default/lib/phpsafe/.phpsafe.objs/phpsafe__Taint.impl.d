lib/phpsafe/taint.ml: Format Int List Phplang Report Secflow Set Vuln
