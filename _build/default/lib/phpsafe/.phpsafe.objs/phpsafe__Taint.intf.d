lib/phpsafe/taint.mli: Format Phplang Report Secflow Set Vuln
