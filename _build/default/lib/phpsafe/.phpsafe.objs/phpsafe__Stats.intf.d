lib/phpsafe/stats.mli: Format Phplang
