lib/phpsafe/analyzer.ml: Config Env Hashtbl List Option Phplang Printf Report Secflow Set String Summary Taint Vuln Wordpress
