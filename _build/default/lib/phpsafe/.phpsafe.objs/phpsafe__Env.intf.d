lib/phpsafe/env.mli: Hashtbl Set Taint
