lib/phpsafe/report_html.mli: Secflow
