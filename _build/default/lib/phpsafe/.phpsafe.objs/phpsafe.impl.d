lib/phpsafe/phpsafe.ml: Analyzer Config Config_spec Drupal Env Joomla Phplang Report_html Report_json Secflow Stats Summary Taint Wordpress
