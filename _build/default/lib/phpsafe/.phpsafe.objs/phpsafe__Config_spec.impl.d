lib/phpsafe/config_spec.ml: Buffer Config Fun List Printf Secflow String Vuln
