lib/phpsafe/config_spec.mli: Config
