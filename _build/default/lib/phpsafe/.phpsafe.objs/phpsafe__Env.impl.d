lib/phpsafe/env.ml: Hashtbl Set String Taint
