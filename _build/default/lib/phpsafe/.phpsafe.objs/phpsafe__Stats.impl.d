lib/phpsafe/stats.ml: Format List Option Phplang Set String
