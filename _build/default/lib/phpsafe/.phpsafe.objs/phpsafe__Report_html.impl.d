lib/phpsafe/report_html.ml: Buffer List Phplang Printf Report Secflow String Vuln
