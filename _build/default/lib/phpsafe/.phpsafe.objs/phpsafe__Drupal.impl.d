lib/phpsafe/drupal.ml: Config Secflow Vuln
