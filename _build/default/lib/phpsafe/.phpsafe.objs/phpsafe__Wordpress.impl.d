lib/phpsafe/wordpress.ml: Config Secflow Vuln
