lib/phpsafe/analyzer.mli: Config Phplang Secflow
