lib/phpsafe/report_json.ml: Buffer Char List Phplang Printf Report Secflow String Vuln
