lib/phpsafe/summary.ml: List Option Phplang Secflow Taint Vuln
