lib/phpsafe/config.ml: List Secflow String Vuln
