(** Textual configuration format — the same extensibility as the original
    phpSAFE's editable configuration files (§III.A): a line-oriented spec
    that loads into a {!Config.t} and serialises back.  See the
    implementation header for the grammar. *)

exception Spec_error of string * int
(** Parse failure: message and 1-based line number. *)

val of_string : string -> Config.t
val to_string : Config.t -> string
(** A fixpoint of [of_string ∘ to_string] up to the source classes. *)

val load : string -> Config.t
(** Load a spec file from disk. *)
