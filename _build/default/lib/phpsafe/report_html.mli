(** HTML rendering of analysis results — the counterpart of the original
    phpSAFE's web-page output (paper §III.D): vulnerable variables, entry
    points and the variable-to-variable data flow of each finding. *)

val escape_html : string -> string
(** Escape the HTML metacharacters (angle brackets, ampersand and both
    quotes) for safe embedding. *)

val render : ?title:string -> Secflow.Report.result -> string
(** A self-contained HTML review page: summary counts, files that could not
    be analyzed, and one card per finding with its data-flow trace. *)
