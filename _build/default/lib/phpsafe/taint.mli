(** Taint values for phpSAFE's analysis stage (paper §III.C).

    A value records, per vulnerability kind, whether the data is currently
    attacker-controlled, which formal parameters it depends on (for the
    summary analysis), and — in the [was_*] fields — what sanitization could
    be undone by a {e revert} function such as [stripslashes] (§III.A). *)

open Secflow

module Int_set : Set.S with type elt = int

type t = {
  xss : bool;
  sqli : bool;
  was_xss : bool;   (** tainted before sanitization (revertible) *)
  was_sqli : bool;
  deps_xss : Int_set.t;  (** parameter indices whose XSS taint reaches here *)
  deps_sqli : Int_set.t;
  was_deps_xss : Int_set.t;
  was_deps_sqli : Int_set.t;
  source : (Vuln.source * Phplang.Ast.pos) option;
  trace : Report.step list;  (** most recent first; bounded *)
}

val max_trace_len : int

val untainted : t

val of_source :
  kinds:Vuln.kind list -> source:Vuln.source -> pos:Phplang.Ast.pos -> t
(** Fresh taint from a configured source. *)

val of_param : int -> t
(** Symbolic taint of formal parameter [i] during summary analysis. *)

val is_tainted : Vuln.kind -> t -> bool
val deps : Vuln.kind -> t -> Int_set.t
val has_deps : t -> bool
val any_tainted : t -> bool

val interesting : t -> bool
(** Live taint or parameter dependencies — worth tracing. *)

val join : t -> t -> t
(** Least upper bound; keeps the first available source and the trace of the
    "more tainted" operand. *)

val join_all : t list -> t

val sanitize : Vuln.kind -> t -> t
(** Neutralise one kind, remembering the prior state for reverts. *)

val sanitize_kinds : Vuln.kind list -> t -> t

val revert : t -> t
(** Revert-function semantics: whatever was sanitized becomes live again. *)

val scrub : t -> t
(** Numeric/boolean results carry no taint at all. *)

val push_step : var:string -> pos:Phplang.Ast.pos -> note:string -> t -> t
(** Append a data-flow hop to the trace (bounded by {!max_trace_len}). *)

val source_of : t -> Vuln.source * Phplang.Ast.pos
(** The recorded source, or [Unknown_source] with a dummy position. *)

val pp : Format.formatter -> t -> unit
