(** Variable state — phpSAFE's [parser_variables] analogue (paper §III.C):
    "a multidimensional associative array [containing] everything needed to
    perform the taint analysis, like the variable name, source file name and
    line number, the dependencies from other variables, ... the filter
    functions applied".

    A scope holds local variables; the global table is shared across files
    (WordPress loads every plugin file into one runtime).  [global $x]
    declarations alias a local name to the global table.  [$obj] → class
    bindings let the analyzer resolve method calls on plugin objects.
    Properties of [$this] are stored per-class in the global table under
    ["Class::$prop"], so taint stored by one method is visible to others. *)

module S = Set.Make (String)

type t = {
  locals : (string, Taint.t) Hashtbl.t;
  globals : (string, Taint.t) Hashtbl.t;  (** shared project-wide *)
  mutable declared_global : S.t;
  top_level : bool;  (** in global scope, locals = globals *)
  class_of : (string, string) Hashtbl.t;  (** variable -> class binding *)
  current_class : string option;  (** class owning the method under analysis *)
  aliases : (string, string) Hashtbl.t;
      (** [$a =& $b] reference bindings: variable -> representative.  The
          paper's methodology enables the same handling in Pixy via its
          [-A] flag (§IV.B). *)
}

let create_toplevel globals =
  {
    locals = globals;
    globals;
    declared_global = S.empty;
    top_level = true;
    class_of = Hashtbl.create 8;
    current_class = None;
    aliases = Hashtbl.create 8;
  }

let create_scope ?current_class globals =
  {
    locals = Hashtbl.create 16;
    globals;
    declared_global = S.empty;
    top_level = false;
    class_of = Hashtbl.create 8;
    current_class;
    aliases = Hashtbl.create 8;
  }

let declare_global t name = t.declared_global <- S.add name t.declared_global

(* follow the alias chain to the representative variable *)
let rec representative t name =
  match Hashtbl.find_opt t.aliases name with
  | Some next when not (String.equal next name) -> representative t next
  | _ -> name

(** Bind [name] as a reference to [target]: both now read and write the
    same abstract cell. *)
let alias t name target =
  let rep = representative t target in
  if not (String.equal rep name) then Hashtbl.replace t.aliases name rep

let table_for t name =
  if t.top_level || S.mem name t.declared_global then t.globals else t.locals

let get t name =
  let name = representative t name in
  match Hashtbl.find_opt (table_for t name) name with
  | Some taint -> taint
  | None -> Taint.untainted

let mem t name =
  let name = representative t name in
  Hashtbl.mem (table_for t name) name

let set t name taint =
  let name = representative t name in
  Hashtbl.replace (table_for t name) name taint

(** Assigning to one array slot taints the whole array conservatively. *)
let set_join t name taint = set t name (Taint.join (get t name) taint)

(** [unset($a)] destroys only [$a]'s binding; a referenced cell stays alive
    through its other names. *)
let unset t name =
  if Hashtbl.mem t.aliases name then Hashtbl.remove t.aliases name
  else Hashtbl.remove (table_for t name) name

(* -- class bindings ------------------------------------------------- *)

let bind_class t var cls = Hashtbl.replace t.class_of var cls

let class_binding t var =
  match Hashtbl.find_opt t.class_of var with
  | Some c -> Some c
  | None -> if String.equal var "$this" then t.current_class else None

(* -- $this / static properties ------------------------------------- *)

let this_prop_key t prop =
  match t.current_class with
  | Some c -> Some (c ^ "::$" ^ prop)
  | None -> None

let static_prop_key cls prop = cls ^ "::" ^ prop

let get_global_key t key =
  match Hashtbl.find_opt t.globals key with
  | Some taint -> taint
  | None -> Taint.untainted

let set_global_key t key taint = Hashtbl.replace t.globals key taint

let set_global_key_join t key taint =
  set_global_key t key (Taint.join (get_global_key t key) taint)
