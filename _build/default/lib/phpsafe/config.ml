(** phpSAFE configuration stage (paper §III.A).

    The configuration correlates the vulnerability classes with PHP-language
    and CMS-framework functions, organised in the paper's four sections:
    potentially-malicious {e sources}, {e sanitization} functions,
    {e revert} functions (which undo sanitization, e.g. [stripslashes]) and
    sensitive {e output} (sink) functions.  The generic entries mirror the
    paper's [class-vulnerable-input.php] / [class-vulnerable-filter.php] /
    [class-vulnerable_output.php] files, which were themselves "based on the
    default configurations of the RIPS tool". *)

open Secflow

type source_entry = {
  src_name : string;       (** superglobal ("$_GET"), function or method name *)
  src_is_method : bool;    (** matched as [$obj->name(...)] when true *)
  src_kinds : Vuln.kind list;  (** which vulnerabilities it can feed *)
  src_desc : Vuln.source;
}

type sanitizer_entry = {
  san_name : string;
  san_is_method : bool;
  san_kinds : Vuln.kind list;  (** kinds this function neutralises *)
}

type sink_entry = {
  snk_name : string;       (** "echo" and "print" are language constructs *)
  snk_is_method : bool;
  snk_kind : Vuln.kind;
}

type t = {
  name : string;
  superglobal_sources : (string * Vuln.kind list) list;
  function_sources : source_entry list;
  sanitizers : sanitizer_entry list;
  reverts : string list;    (** functions that undo sanitization *)
  sinks : sink_entry list;
  passthrough : string list;
      (** builtins that propagate their (first) argument's taint unchanged:
          [trim], [substr], ... *)
  concat_all_args : string list;
      (** builtins whose result joins the taint of all arguments:
          [sprintf], [implode], [str_replace], ... *)
}

let both = [ Vuln.Xss; Vuln.Sqli ]
let xss = [ Vuln.Xss ]
let sqli = [ Vuln.Sqli ]

let fn_source ?(is_method = false) name kinds desc =
  { src_name = name; src_is_method = is_method; src_kinds = kinds; src_desc = desc }

let sanitizer ?(is_method = false) name kinds =
  { san_name = name; san_is_method = is_method; san_kinds = kinds }

let sink ?(is_method = false) name kind =
  { snk_name = name; snk_is_method = is_method; snk_kind = kind }

(** Generic PHP configuration: detects XSS and SQLi in any PHP code,
    framework-agnostic ("ready for detecting generic XSS and SQLi
    vulnerabilities", §III.A). *)
let generic_php =
  {
    name = "generic-php";
    superglobal_sources =
      [ ("$_GET", both); ("$_POST", both); ("$_COOKIE", both);
        ("$_REQUEST", both); ("$_FILES", both); ("$_SERVER", both) ];
    function_sources =
      [ fn_source "file_get_contents" both (Vuln.File_read "file_get_contents");
        fn_source "fgets" both (Vuln.File_read "fgets");
        fn_source "fread" both (Vuln.File_read "fread");
        fn_source "file" both (Vuln.File_read "file");
        fn_source "fscanf" both (Vuln.File_read "fscanf");
        fn_source "mysql_query" xss (Vuln.Database "mysql_query");
        fn_source "mysql_fetch_assoc" xss (Vuln.Database "mysql_fetch_assoc");
        fn_source "mysql_fetch_array" xss (Vuln.Database "mysql_fetch_array");
        fn_source "mysql_fetch_row" xss (Vuln.Database "mysql_fetch_row");
        fn_source "mysql_fetch_object" xss (Vuln.Database "mysql_fetch_object");
        fn_source "mysql_result" xss (Vuln.Database "mysql_result");
        fn_source "getenv" both (Vuln.Function_return "getenv") ];
    sanitizers =
      [ sanitizer "htmlspecialchars" xss;
        sanitizer "htmlentities" xss;
        sanitizer "strip_tags" xss;
        sanitizer "urlencode" xss;
        sanitizer "rawurlencode" xss;
        sanitizer "json_encode" xss;
        sanitizer "intval" both;
        sanitizer "floatval" both;
        sanitizer "abs" both;
        sanitizer "count" both;
        sanitizer "strlen" both;
        sanitizer "md5" both;
        sanitizer "sha1" both;
        sanitizer "crc32" both;
        sanitizer "number_format" both;
        sanitizer "addslashes" sqli;
        sanitizer "mysql_escape_string" sqli;
        sanitizer "mysql_real_escape_string" sqli ];
    reverts =
      [ "stripslashes"; "stripcslashes"; "urldecode"; "rawurldecode";
        "html_entity_decode"; "htmlspecialchars_decode"; "base64_decode" ];
    sinks =
      [ sink "echo" Vuln.Xss;
        sink "print" Vuln.Xss;
        sink "printf" Vuln.Xss;
        sink "print_r" Vuln.Xss;
        sink "vprintf" Vuln.Xss;
        sink "die" Vuln.Xss;
        sink "exit" Vuln.Xss;
        sink "mysql_query" Vuln.Sqli;
        sink "mysql_db_query" Vuln.Sqli;
        sink "mysql_unbuffered_query" Vuln.Sqli ];
    passthrough =
      [ "trim"; "ltrim"; "rtrim"; "substr"; "strtolower"; "strtoupper";
        "ucfirst"; "ucwords"; "nl2br"; "strval"; "stristr"; "strstr";
        "wordwrap"; "chunk_split"; "strrev" ];
    concat_all_args = [ "sprintf"; "vsprintf"; "implode"; "join"; "str_replace"; "preg_replace"; "str_pad" ];
  }

let is_superglobal_source t name = List.assoc_opt name t.superglobal_sources

let find_function_source t name =
  List.find_opt
    (fun e -> (not e.src_is_method) && String.equal e.src_name name)
    t.function_sources

let find_method_source t name =
  List.find_opt
    (fun e -> e.src_is_method && String.equal e.src_name name)
    t.function_sources

let find_sanitizer t name =
  List.find_opt
    (fun e -> (not e.san_is_method) && String.equal e.san_name name)
    t.sanitizers

let find_method_sanitizer t name =
  List.find_opt
    (fun e -> e.san_is_method && String.equal e.san_name name)
    t.sanitizers

let is_revert t name = List.exists (String.equal name) t.reverts

let find_sinks t name =
  List.filter
    (fun e -> (not e.snk_is_method) && String.equal e.snk_name name)
    t.sinks

let find_method_sinks t name =
  List.filter
    (fun e -> e.snk_is_method && String.equal e.snk_name name)
    t.sinks

let is_passthrough t name = List.exists (String.equal name) t.passthrough
let is_concat_all t name = List.exists (String.equal name) t.concat_all_args

(** Merge an extension profile (e.g. WordPress) into a base configuration —
    "this ability can be easily extended to other CMSs, by adding their
    input, filtering and sink functions to the configuration files". *)
let extend base ext =
  {
    name = base.name ^ "+" ^ ext.name;
    superglobal_sources = base.superglobal_sources @ ext.superglobal_sources;
    function_sources = base.function_sources @ ext.function_sources;
    sanitizers = base.sanitizers @ ext.sanitizers;
    reverts = base.reverts @ ext.reverts;
    sinks = base.sinks @ ext.sinks;
    passthrough = base.passthrough @ ext.passthrough;
    concat_all_args = base.concat_all_args @ ext.concat_all_args;
  }
