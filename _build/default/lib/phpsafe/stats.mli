(** Analysis resources beyond the findings (paper §III.D): variables,
    functions, included files and token counts exposed to help review. *)

type t = {
  st_files : int;
  st_tokens : int;             (** significant tokens over all files *)
  st_loc : int;
  st_functions : int;          (** free functions *)
  st_classes : int;
  st_methods : int;
  st_variables : int;          (** distinct variable names *)
  st_superglobal_reads : int;  (** occurrences of configured input vectors *)
  st_echo_sinks : int;         (** echo/print output points *)
  st_includes : int;           (** include/require expressions *)
}

val empty : t

val of_project : Phplang.Project.t -> t
(** Files that fail to parse contribute token and LOC counts only. *)

val pp : Format.formatter -> t -> unit
