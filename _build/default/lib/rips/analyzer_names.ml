(** Human-readable names for expressions in findings. *)

let rec name_of_expr (e : Phplang.Ast.expr) =
  match e.Phplang.Ast.e with
  | Phplang.Ast.Var v -> v
  | Phplang.Ast.ArrayGet (b, _) -> name_of_expr b ^ "[...]"
  | Phplang.Ast.Prop (b, p) -> name_of_expr b ^ "->" ^ p
  | Phplang.Ast.StaticProp (c, p) -> c ^ "::" ^ p
  | Phplang.Ast.Call (f, _) -> f ^ "()"
  | Phplang.Ast.MethodCall (b, m, _) -> name_of_expr b ^ "->" ^ m ^ "()"
  | Phplang.Ast.StaticCall (c, m, _) -> c ^ "::" ^ m ^ "()"
  | Phplang.Ast.Interp _ -> "<string>"
  | Phplang.Ast.Bin (Phplang.Ast.Concat, _, _) -> "<concat>"
  | _ -> "<expr>"
