(** RIPS taint values: per-kind flags plus the revert bookkeeping RIPS's
    "secure and unsecure PHP built-in functions" model needs.  Simpler than
    phpSAFE's {!Phpsafe.Taint} — RIPS's backward analysis carries no
    parameter dependency sets, because parameters are resolved by walking to
    the call sites instead. *)

open Secflow

type t = {
  xss : bool;
  sqli : bool;
  was_xss : bool;
  was_sqli : bool;
  source : Vuln.source option;
  source_pos : Phplang.Ast.pos option;
}

let clean =
  { xss = false; sqli = false; was_xss = false; was_sqli = false;
    source = None; source_pos = None }

let of_source kinds source pos =
  { clean with
    xss = List.mem Vuln.Xss kinds;
    sqli = List.mem Vuln.Sqli kinds;
    source = Some source;
    source_pos = Some pos }

let is_tainted kind t = match kind with Vuln.Xss -> t.xss | Vuln.Sqli -> t.sqli
let any t = t.xss || t.sqli

let join a b =
  { xss = a.xss || b.xss;
    sqli = a.sqli || b.sqli;
    was_xss = a.was_xss || b.was_xss;
    was_sqli = a.was_sqli || b.was_sqli;
    source = (match a.source with Some _ -> a.source | None -> b.source);
    source_pos = (match a.source with Some _ -> a.source_pos | None -> b.source_pos) }

let join_all = List.fold_left join clean

let sanitize kinds t =
  List.fold_left
    (fun t k ->
      match k with
      | Vuln.Xss -> { t with xss = false; was_xss = t.was_xss || t.xss }
      | Vuln.Sqli -> { t with sqli = false; was_sqli = t.was_sqli || t.sqli })
    t kinds

let revert t = { t with xss = t.xss || t.was_xss; sqli = t.sqli || t.was_sqli }
