(** RIPS-like analyzer: backward-directed taint analysis from each sensitive
    sink (paper §II), per file, procedural code only, no CMS knowledge,
    never fails a file.  See the implementation header for the full
    behavioural model. *)

val name : string

val max_work : int
(** Per-sink resolution budget; beyond it the value resolves to clean. *)

val analyze_file :
  file:string ->
  string ->
  Secflow.Report.finding list * Secflow.Report.file_outcome * int
(** Analyze one file in isolation: findings, outcome, error count.  Parse
    problems are reported as a failed outcome but never abort (robustness,
    §V.E). *)

val analyze_project : Phplang.Project.t -> Secflow.Report.result
(** File-by-file analysis of a plugin, findings de-duplicated per
    (kind, file, line). *)
