lib/rips/rips_config.ml: List Secflow Vuln
