lib/rips/analyzer_names.ml: Phplang
