lib/rips/rips_taint.mli: Phplang Secflow Vuln
