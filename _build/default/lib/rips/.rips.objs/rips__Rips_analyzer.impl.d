lib/rips/rips_analyzer.ml: Analyzer_names Array Hashtbl List Option Phplang Printf Report Rips_config Rips_taint Secflow Set String Vuln
