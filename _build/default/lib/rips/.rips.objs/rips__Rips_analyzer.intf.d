lib/rips/rips_analyzer.mli: Phplang Secflow
