lib/rips/rips.ml: Phplang Rips_analyzer Rips_config Rips_taint Secflow
