lib/rips/rips_taint.ml: List Phplang Secflow Vuln
