(** Public facade for the RIPS-like baseline analyzer. *)

module Config = Rips_config
module Taint = Rips_taint
module Analyzer = Rips_analyzer

let analyze_project = Rips_analyzer.analyze_project

let analyze_source ~file source =
  analyze_project
    (Phplang.Project.make ~name:file [ { Phplang.Project.path = file; source } ])

let tool : Secflow.Tool.t =
  { Secflow.Tool.name = "RIPS"; analyze_project }
