(** Printer tests: hand-written round trips plus QCheck properties —
    [parse (print ast) = ast] on randomly generated ASTs, and printing is a
    fixpoint of parse∘print. *)

open Phplang

let parse src = Parser.parse_source ~file:"t.php" src
let print prog = Printer.program_to_string prog

let roundtrip_case name src =
  Alcotest.test_case name `Quick (fun () ->
      let prog = parse src in
      let printed = print prog in
      let prog2 = parse printed in
      if not (Ast.equal_program prog prog2) then
        Alcotest.failf "round trip failed:\n--- printed ---\n%s" printed)

let unit_cases =
  [
    roundtrip_case "quotes and escapes"
      "<?php $a = 'it\\'s'; $b = \"x\\\"y \\$z\"; echo $a . $b;";
    roundtrip_case "interpolation forms"
      "<?php echo \"a $x b $o->p c $arr[k] d {$w->prefix}tbl\";";
    roundtrip_case "control flow"
      "<?php if ($a) { f(); } elseif ($b) { g(); } else { h(); } while ($a) { break; } do { continue; } while ($b); for ($i = 0; $i < 3; $i++) { f(); } foreach ($xs as $k => $v) { g(); } switch ($m) { case 1: f(); break; default: g(); }";
    roundtrip_case "class with everything"
      "<?php class A extends B implements C { const K = 1; public $p = 'x'; private static $q; public function m($a = 1) { return $a; } }";
    roundtrip_case "closures" "<?php $f = function($a) use ($b, &$c) { return $a . $b; };";
    roundtrip_case "inline html" "<?php $a = 1; ?><div>static</div><?php echo $a;";
    roundtrip_case "unary fusion hazards" "<?php $a = - -$b; $c = --$d; $e = -$f--;";
    roundtrip_case "exit and print" "<?php print $a; exit('bye'); die;";
    roundtrip_case "reference assignment and list"
      "<?php $a =& $b; list($x, , $y) = f();";
    roundtrip_case "try catch throw"
      "<?php try { f(); } catch (Exception $e) { g(); } catch (Error $e2) { h(); } throw new Exception('x');";
    roundtrip_case "arrays" "<?php $a = array(1, 'k' => 2, f() => $x); $b = [1, 2];";
    roundtrip_case "statement without trailing semicolon before close tag"
      "<?php echo $a ?>";
  ]

(* ------------------------------------------------------------------ *)
(* QCheck AST generators                                              *)
(* ------------------------------------------------------------------ *)

open QCheck2

let var_pool = [| "$a"; "$b"; "$c"; "$row"; "$value"; "$wpdb" |]
let name_pool = [| "foo"; "bar_baz"; "render"; "get_data"; "process" |]
let prop_pool = [| "name"; "prefix"; "value" |]

let gen_var = Gen.map (fun i -> var_pool.(i)) (Gen.int_bound (Array.length var_pool - 1))
let gen_name = Gen.map (fun i -> name_pool.(i)) (Gen.int_bound (Array.length name_pool - 1))
let gen_prop = Gen.map (fun i -> prop_pool.(i)) (Gen.int_bound (Array.length prop_pool - 1))

(* strings exercising the escaper *)
let gen_str =
  Gen.oneofl
    [ "plain"; "it's"; "back\\slash"; "do$llar"; "qu\"ote"; "new\nline";
      "tab\there"; ""; "a{b}c" ]

let e d = Ast.mk_e d

let gen_expr : Ast.expr Gen.t =
  Gen.sized
    (Gen.fix (fun self n ->
         let leaf =
           Gen.oneof
             [ Gen.map (fun v -> e (Ast.Var v)) gen_var;
               Gen.map (fun s -> e (Ast.Str s)) gen_str;
               Gen.map (fun i -> e (Ast.Int i)) Gen.nat;
               Gen.oneofl [ e Ast.Null; e Ast.True; e Ast.False ];
               Gen.map (fun c -> e (Ast.Const (String.capitalize_ascii c))) gen_name ]
         in
         if n <= 0 then leaf
         else
           let sub = self (n / 2) in
           Gen.oneof
             [ leaf;
               Gen.map2 (fun a b -> e (Ast.Bin (Ast.Concat, a, b))) sub sub;
               Gen.map2 (fun a b -> e (Ast.Bin (Ast.Plus, a, b))) sub sub;
               Gen.map2 (fun a b -> e (Ast.Bin (Ast.Eq, a, b))) sub sub;
               Gen.map2 (fun a b -> e (Ast.Bin (Ast.BoolAnd, a, b))) sub sub;
               Gen.map (fun a -> e (Ast.Un (Ast.Not, a))) sub;
               Gen.map (fun a -> e (Ast.Un (Ast.Neg, a))) sub;
               Gen.map (fun a -> e (Ast.CastE (Ast.CastInt, a))) sub;
               Gen.map2 (fun f args -> e (Ast.Call (f, args))) gen_name
                 (Gen.list_size (Gen.int_bound 2) sub);
               Gen.map2 (fun a i -> e (Ast.ArrayGet (a, Some i)))
                 (Gen.map (fun v -> e (Ast.Var v)) gen_var)
                 sub;
               Gen.map2 (fun v p -> e (Ast.Prop (e (Ast.Var v), p))) gen_var gen_prop;
               Gen.map3 (fun v m args -> e (Ast.MethodCall (e (Ast.Var v), m, args)))
                 gen_var gen_name
                 (Gen.list_size (Gen.int_bound 2) sub);
               Gen.map3 (fun c t f -> e (Ast.Ternary (c, Some t, f))) sub sub sub;
               Gen.map2 (fun v rhs -> e (Ast.Assign (e (Ast.Var v), rhs))) gen_var sub;
               (* interpolated string: strict ILit/IExpr alternation with
                  PHP-valid ({$...}-rooted) expressions only, and no empty
                  literals, so re-parsing cannot merge or splice parts *)
               (let gen_rooted =
                  Gen.oneof
                    [ Gen.map (fun v -> e (Ast.Var v)) gen_var;
                      Gen.map2 (fun v p -> e (Ast.Prop (e (Ast.Var v), p)))
                        gen_var gen_prop;
                      Gen.map2
                        (fun v k ->
                          e (Ast.ArrayGet (e (Ast.Var v), Some (e (Ast.Str k)))))
                        gen_var gen_prop ]
                in
                Gen.map2
                  (fun x y ->
                    e (Ast.Interp [ Ast.ILit "q="; Ast.IExpr x; Ast.ILit "&r=";
                                    Ast.IExpr y ]))
                  gen_rooted gen_rooted) ]))

let s d = Ast.mk_s d

let gen_stmt : Ast.stmt Gen.t =
  Gen.sized
    (Gen.fix (fun self n ->
         let simple =
           Gen.oneof
             [ Gen.map (fun x -> s (Ast.Expr x)) gen_expr;
               Gen.map (fun xs -> s (Ast.Echo xs))
                 (Gen.list_size (Gen.int_range 1 2) gen_expr);
               Gen.map (fun v -> s (Ast.Global [ v ])) gen_var;
               Gen.map (fun v -> s (Ast.Unset [ e (Ast.Var v) ])) gen_var;
               Gen.map (fun x -> s (Ast.Return (Some x))) gen_expr ]
         in
         if n <= 0 then simple
         else
           let body = Gen.list_size (Gen.int_range 1 2) (self (n / 2)) in
           Gen.oneof
             [ simple;
               Gen.map2 (fun c b -> s (Ast.If ([ (c, b) ], None))) gen_expr body;
               Gen.map3 (fun c b1 b2 -> s (Ast.If ([ (c, b1) ], Some b2)))
                 gen_expr body body;
               Gen.map2 (fun c b -> s (Ast.While (c, b))) gen_expr body;
               Gen.map3 (fun subj v b ->
                   s (Ast.Foreach (subj, Ast.ForeachValue (e (Ast.Var v)), b)))
                 gen_expr gen_var body;
               Gen.map2 (fun name b ->
                   s (Ast.FuncDef
                        { Ast.f_name = name;
                          f_params = [ { Ast.p_name = "$arg"; p_default = None;
                                         p_by_ref = false; p_hint = None } ];
                          f_body = b; f_pos = Ast.dummy_pos }))
                 gen_name body ]))

let gen_program = Gen.list_size (Gen.int_range 1 6) gen_stmt

let print_program prog = Printer.program_to_string prog

let prop_roundtrip =
  Test.make ~name:"parse (print p) = p" ~count:150 ~print:print_program
    gen_program (fun prog ->
      let printed = print prog in
      match parse printed with
      | parsed -> Ast.equal_program prog parsed
      | exception _ -> false)

let prop_fixpoint =
  Test.make ~name:"print is a fixpoint of parse∘print" ~count:100
    ~print:print_program gen_program (fun prog ->
      let once = print prog in
      let twice = print (parse once) in
      String.equal once twice)

let prop_expr_roundtrip =
  Test.make ~name:"expr round trip" ~count:150
    ~print:(fun x -> Printer.expr_to_string x)
    gen_expr
    (fun x ->
      let printed = Printer.expr_to_string x in
      match Parser.expr_of_string printed with
      | parsed -> Ast.equal_expr x parsed
      | exception _ -> false)

let prop_size_positive =
  Test.make ~name:"program_size counts every statement" ~count:100
    ~print:print_program gen_program (fun prog ->
      Ast.program_size prog >= List.length prog)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_fixpoint; prop_expr_roundtrip; prop_size_positive ]

let () =
  Alcotest.run "printer"
    [ ("hand-written round trips", unit_cases);
      ("qcheck properties", qcheck_cases) ]
