(** Behaviour tests for the Joomla and Drupal profiles (paper §VI future
    work): phpSAFE analyzes plugins from other CMSs once their functions are
    in the configuration — and NOT before. *)

open Secflow

let with_config config src =
  let opts = { Phpsafe.default_options with Phpsafe.config } in
  Phpsafe.analyze_source ~opts ~file:"t.php" ("<?php\n" ^ src)

let count config src = List.length (with_config config src).Report.findings

let kinds config src =
  (with_config config src).Report.findings
  |> List.map (fun (f : Report.finding) -> Vuln.kind_to_string f.Report.kind)
  |> List.sort compare

let case name f = Alcotest.test_case name `Quick f

let joomla_src_xss =
  "$db = JFactory::getDbo();\n$rows = $db->loadObjectList();\nforeach ($rows as $r) {\necho $r->title;\n}"

let joomla_src_sqli =
  "$id = $_GET['id'];\n$db->setQuery(\"SELECT * FROM #__content WHERE id = $id\");"

let joomla_cases =
  [
    case "Joomla loadObjectList rows are tainted" (fun () ->
        Alcotest.(check int) "found" 1
          (count Phpsafe.Joomla.default_config joomla_src_xss));
    case "WordPress profile misses the Joomla idiom" (fun () ->
        Alcotest.(check int) "missed" 0
          (count Phpsafe.Wordpress.default_config joomla_src_xss));
    case "Joomla setQuery is a SQLi sink" (fun () ->
        Alcotest.(check (list string)) "sqli" [ "SQLi" ]
          (kinds Phpsafe.Joomla.default_config joomla_src_sqli));
    case "Joomla $db->quote sanitizes SQLi" (fun () ->
        Alcotest.(check int) "clean" 0
          (count Phpsafe.Joomla.default_config
             "$id = $db->quote($_GET['id']);\n$db->setQuery(\"SELECT $id\");"));
    case "JFilterInput::clean via an instance sanitizes" (fun () ->
        Alcotest.(check int) "clean" 0
          (count Phpsafe.Joomla.default_config
             "$safe = $filter->clean($_GET['q']);\necho $safe;"));
    case "request accessor getVar is a source" (fun () ->
        Alcotest.(check int) "found" 1
          (count Phpsafe.Joomla.default_config
             "$v = $input->getVar('task');\necho $v;"));
  ]

let drupal_src_xss =
  "$res = db_query('SELECT title FROM {node}');\n$row = db_fetch_object($res);\necho $row->title;"

let drupal_cases =
  [
    case "Drupal db_query results are tainted" (fun () ->
        Alcotest.(check int) "found" 1
          (count Phpsafe.Drupal.default_config drupal_src_xss));
    case "check_plain sanitizes XSS" (fun () ->
        Alcotest.(check int) "clean" 0
          (count Phpsafe.Drupal.default_config
             "echo check_plain($_GET['q']);"));
    case "filter_xss sanitizes XSS" (fun () ->
        Alcotest.(check int) "clean" 0
          (count Phpsafe.Drupal.default_config
             "echo filter_xss($_GET['q']);"));
    case "db_query is a SQLi sink" (fun () ->
        Alcotest.(check (list string)) "kinds include sqli" [ "SQLi" ]
          (kinds Phpsafe.Drupal.default_config
             "$id = $_POST['nid'];\n$x = db_query(\"SELECT /*q*/ $id\");"));
    case "drupal_set_message is an XSS sink" (fun () ->
        Alcotest.(check int) "found" 1
          (count Phpsafe.Drupal.default_config
             "drupal_set_message('Saved: ' . $_GET['name']);"));
    case "decode_entities reverts sanitization" (fun () ->
        Alcotest.(check int) "revert" 1
          (count Phpsafe.Drupal.default_config
             "$s = check_plain($_GET['x']);\necho decode_entities($s);"));
    case "WordPress profile misses the Drupal idiom" (fun () ->
        (* db_query is unknown to the WP profile as a source; only the
           generic mysql_* family is *)
        Alcotest.(check int) "missed" 0
          (count Phpsafe.Wordpress.default_config drupal_src_xss));
  ]

let cross_cases =
  [
    case "profiles are additive over generic PHP" (fun () ->
        (* generic superglobal detection works under every profile *)
        List.iter
          (fun config ->
            Alcotest.(check int) "generic xss" 1
              (count config "echo $_GET['x'];"))
          [ Phpsafe.Wordpress.default_config; Phpsafe.Joomla.default_config;
            Phpsafe.Drupal.default_config; Phpsafe.Config.generic_php ]);
    case "a combined multi-CMS configuration works" (fun () ->
        let all =
          Phpsafe.Config.extend
            (Phpsafe.Config.extend Phpsafe.Wordpress.default_config
               Phpsafe.Joomla.profile)
            Phpsafe.Drupal.profile
        in
        Alcotest.(check int) "wp idiom" 1
          (count all "$v = $wpdb->get_var('q');\necho $v;");
        Alcotest.(check int) "joomla idiom" 1 (count all joomla_src_xss);
        Alcotest.(check int) "drupal idiom" 1 (count all drupal_src_xss));
  ]

let () =
  Alcotest.run "cms-profiles"
    [ ("joomla", joomla_cases); ("drupal", drupal_cases);
      ("composition", cross_cases) ]
