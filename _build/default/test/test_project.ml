(** Project model and LOC accounting tests: include-target extraction,
    transitive closure with cycles, and the line-counting rules. *)

open Phplang

let parse ~file src = Parser.parse_source ~file src

let file path source = { Project.path; source }

let case name f = Alcotest.test_case name `Quick f

let include_cases =
  [
    case "literal include targets in order" (fun () ->
        let prog =
          parse ~file:"a.php"
            "<?php include 'x.php'; require_once 'y.php'; if ($c) { include 'z.php'; }"
        in
        Alcotest.(check (list string)) "targets" [ "x.php"; "y.php"; "z.php" ]
          (Project.include_targets prog));
    case "dynamic includes are skipped" (fun () ->
        let prog = parse ~file:"a.php" "<?php include $path; include 'ok.php';" in
        Alcotest.(check (list string)) "targets" [ "ok.php" ]
          (Project.include_targets prog));
    case "includes found inside functions and classes" (fun () ->
        let prog =
          parse ~file:"a.php"
            "<?php function f() { include 'in-fn.php'; } class C { public function m() { include 'in-m.php'; } }"
        in
        Alcotest.(check (list string)) "targets" [ "in-fn.php"; "in-m.php" ]
          (Project.include_targets prog));
    case "closure depth and membership" (fun () ->
        let p =
          Project.make ~name:"p"
            [ file "a.php" "<?php include 'b.php';";
              file "b.php" "<?php include 'c.php';";
              file "c.php" "<?php $x = 1;" ]
        in
        let parse_file (f : Project.file) =
          Some (parse ~file:f.Project.path f.Project.source)
        in
        let closure, depth = Project.include_closure ~parse:parse_file p "a.php" in
        Alcotest.(check (list string)) "closure" [ "a.php"; "b.php"; "c.php" ] closure;
        Alcotest.(check int) "depth" 2 depth);
    case "closure cuts cycles" (fun () ->
        let p =
          Project.make ~name:"p"
            [ file "a.php" "<?php include 'b.php';";
              file "b.php" "<?php include 'a.php';" ]
        in
        let parse_file (f : Project.file) =
          Some (parse ~file:f.Project.path f.Project.source)
        in
        let closure, _depth = Project.include_closure ~parse:parse_file p "a.php" in
        Alcotest.(check (list string)) "closure" [ "a.php"; "b.php" ] closure);
    case "missing include files are tolerated" (fun () ->
        let p = Project.make ~name:"p" [ file "a.php" "<?php include 'wp-load.php';" ] in
        let parse_file (f : Project.file) =
          Some (parse ~file:f.Project.path f.Project.source)
        in
        let closure, depth = Project.include_closure ~parse:parse_file p "a.php" in
        Alcotest.(check int) "closure size" 2 (List.length closure);
        Alcotest.(check int) "depth counts the attempt" 1 depth);
    case "find and file_count" (fun () ->
        let p = Project.make ~name:"p" [ file "a.php" "x"; file "b.php" "y" ] in
        Alcotest.(check int) "count" 2 (Project.file_count p);
        Alcotest.(check bool) "find hit" true (Project.find p "a.php" <> None);
        Alcotest.(check bool) "find miss" true (Project.find p "c.php" = None));
  ]

let loc_cases =
  [
    case "count skips blank lines" (fun () ->
        Alcotest.(check int) "loc" 3 (Loc.count "a\n\nb\n   \nc"));
    case "count of empty string" (fun () ->
        Alcotest.(check int) "loc" 0 (Loc.count ""));
    case "physical lines" (fun () ->
        Alcotest.(check int) "lines" 3 (Loc.physical_lines "a\nb\nc");
        Alcotest.(check int) "trailing newline" 3 (Loc.physical_lines "a\nb\nc\n");
        Alcotest.(check int) "empty" 0 (Loc.physical_lines ""));
    case "tabs and spaces are blank" (fun () ->
        Alcotest.(check int) "loc" 1 (Loc.count "\t \r\nreal"));
    case "project_loc sums files" (fun () ->
        let p =
          Project.make ~name:"p" [ file "a.php" "x\ny"; file "b.php" "z" ]
        in
        Alcotest.(check int) "total" 3 (Loc.project_loc p));
  ]

let () =
  Alcotest.run "project"
    [ ("includes", include_cases); ("loc", loc_cases) ]
