(** CFG construction tests: block structure, edges for each control
    construct, jump wiring and reverse post-order. *)

module A = Phplang.Ast
module Cfg = Pixy.Cfg

let build src =
  Cfg.build (Phplang.Parser.parse_source ~file:"t.php" ("<?php\n" ^ src))

let reachable cfg =
  let seen = Hashtbl.create 16 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      List.iter go (Cfg.node cfg id).Cfg.succs
    end
  in
  go cfg.Cfg.entry;
  Hashtbl.length seen

let exit_reachable cfg =
  let seen = Hashtbl.create 16 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      List.iter go (Cfg.node cfg id).Cfg.succs
    end
  in
  go cfg.Cfg.entry;
  Hashtbl.mem seen cfg.Cfg.exit_

let case name f = Alcotest.test_case name `Quick f

let cases =
  [
    case "straight-line code is one path" (fun () ->
        let cfg = build "$a = 1;\n$b = 2;\necho $b;" in
        Alcotest.(check bool) "exit reachable" true (exit_reachable cfg);
        let entry = Cfg.node cfg cfg.Cfg.entry in
        Alcotest.(check int) "all stmts in entry" 3 (List.length entry.Cfg.stmts));
    case "if creates branch and merge" (fun () ->
        let cfg = build "if ($c) {\n$a = 1;\n}\necho $a;" in
        let entry = Cfg.node cfg cfg.Cfg.entry in
        Alcotest.(check int) "entry has two successors" 2
          (List.length entry.Cfg.succs);
        Alcotest.(check bool) "exit reachable" true (exit_reachable cfg));
    case "if-else: both branches reach the merge" (fun () ->
        let cfg = build "if ($c) {\n$a = 1;\n} else {\n$a = 2;\n}\necho $a;" in
        Alcotest.(check bool) "exit reachable" true (exit_reachable cfg));
    case "while has a back edge" (fun () ->
        let cfg = build "while ($c) {\n$a = 1;\n}" in
        let has_back =
          Array.exists
            (fun (n : Cfg.node) ->
              List.exists (fun s -> s < n.Cfg.id) n.Cfg.succs)
            cfg.Cfg.nodes
        in
        Alcotest.(check bool) "back edge exists" true has_back);
    case "return jumps to exit" (fun () ->
        let cfg = build "return 1;\necho 'dead';" in
        let entry = Cfg.node cfg cfg.Cfg.entry in
        Alcotest.(check (list int)) "entry -> exit" [ cfg.Cfg.exit_ ]
          entry.Cfg.succs);
    case "exit() jumps to exit node" (fun () ->
        let cfg = build "$a = 1;\nexit;\necho $a;" in
        let entry = Cfg.node cfg cfg.Cfg.entry in
        Alcotest.(check (list int)) "entry -> exit" [ cfg.Cfg.exit_ ]
          entry.Cfg.succs);
    case "break wires to loop exit" (fun () ->
        let cfg = build "while ($c) {\nbreak;\n$x = 1;\n}\necho 'after';" in
        Alcotest.(check bool) "exit reachable" true (exit_reachable cfg));
    case "continue wires to header" (fun () ->
        let cfg = build "while ($c) {\ncontinue;\n}\necho 'after';" in
        Alcotest.(check bool) "exit reachable" true (exit_reachable cfg));
    case "foreach header carries the binding" (fun () ->
        let cfg = build "foreach ($xs as $v) {\necho $v;\n}" in
        let has_binding =
          Array.exists
            (fun (n : Cfg.node) ->
              List.exists
                (fun (s : A.stmt) ->
                  match s.A.s with A.Foreach (_, _, []) -> true | _ -> false)
                n.Cfg.stmts)
            cfg.Cfg.nodes
        in
        Alcotest.(check bool) "binding present" true has_binding);
    case "switch cases fall through" (fun () ->
        let cfg =
          build "switch ($m) {\ncase 1:\n$a = 1;\ncase 2:\n$a = 2;\nbreak;\n}"
        in
        Alcotest.(check bool) "exit reachable" true (exit_reachable cfg));
    case "declarations produce no statements" (fun () ->
        let cfg = build "function f() {\necho 1;\n}\nclass A {\n}" in
        let total =
          Array.fold_left
            (fun acc (n : Cfg.node) -> acc + List.length n.Cfg.stmts)
            0 cfg.Cfg.nodes
        in
        Alcotest.(check int) "no statements" 0 total);
    case "rpo starts at entry and is complete for reachable nodes" (fun () ->
        let cfg = build "if ($c) {\n$a = 1;\n} else {\n$b = 2;\n}\nwhile ($d) {\n$e = 3;\n}" in
        let order = Cfg.rpo cfg in
        Alcotest.(check int) "first is entry" cfg.Cfg.entry (List.hd order);
        Alcotest.(check int) "covers reachable nodes" (reachable cfg)
          (List.length order));
    case "try-catch: body and handlers both flow to merge" (fun () ->
        let cfg =
          build "try {\n$a = 1;\n} catch (E $e) {\n$a = 2;\n}\necho $a;"
        in
        Alcotest.(check bool) "exit reachable" true (exit_reachable cfg));
  ]

let () = Alcotest.run "cfg" [ ("construction", cases) ]
