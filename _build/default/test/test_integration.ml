(** End-to-end integration: run the full three-tool evaluation on both
    corpus versions and assert the headline paper results — Table I counts,
    the Fig. 2 unions, the §V.A OOP detections, §V.D inertia and §V.E
    robustness.  These are the reproduction's acceptance tests. *)

open Secflow

(* the evaluations are expensive; compute them once *)
let ev2012 = lazy (Evalkit.Runner.evaluate Corpus.Plan.V2012)
let ev2014 = lazy (Evalkit.Runner.evaluate Corpus.Plan.V2014)

let metrics ev tool kind =
  let c = Evalkit.Runner.classified_for (Lazy.force ev) tool in
  Evalkit.Matching.metrics_for ?kind ~union:(Lazy.force ev).Evalkit.Runner.ev_union c

let case name f = Alcotest.test_case name `Quick f

let check_tp_fp name ev tool kind ~tp ~fp =
  case name (fun () ->
      let m = metrics ev tool kind in
      Alcotest.(check int) (name ^ " TP") tp m.Evalkit.Metrics.tp;
      Alcotest.(check int) (name ^ " FP") fp m.Evalkit.Metrics.fp)

let xss = Some Vuln.Xss
let sqli = Some Vuln.Sqli

let table1_cases =
  [
    (* XSS block of Table I *)
    check_tp_fp "phpSAFE XSS 2012" ev2012 "phpSAFE" xss ~tp:307 ~fp:63;
    check_tp_fp "phpSAFE XSS 2014" ev2014 "phpSAFE" xss ~tp:374 ~fp:57;
    check_tp_fp "RIPS XSS 2012" ev2012 "RIPS" xss ~tp:134 ~fp:79;
    check_tp_fp "RIPS XSS 2014" ev2014 "RIPS" xss ~tp:288 ~fp:79;
    check_tp_fp "Pixy XSS 2012" ev2012 "Pixy" xss ~tp:50 ~fp:187;
    check_tp_fp "Pixy XSS 2014" ev2014 "Pixy" xss ~tp:20 ~fp:208;
    (* SQLi block *)
    check_tp_fp "phpSAFE SQLi 2012" ev2012 "phpSAFE" sqli ~tp:8 ~fp:2;
    check_tp_fp "phpSAFE SQLi 2014" ev2014 "phpSAFE" sqli ~tp:9 ~fp:5;
    check_tp_fp "RIPS SQLi 2012" ev2012 "RIPS" sqli ~tp:0 ~fp:0;
    check_tp_fp "RIPS SQLi 2014" ev2014 "RIPS" sqli ~tp:0 ~fp:1;
    check_tp_fp "Pixy SQLi both" ev2012 "Pixy" sqli ~tp:0 ~fp:0;
    case "tool ranking holds (phpSAFE > RIPS > Pixy on F-score)" (fun () ->
        let f ev tool =
          Evalkit.Metrics.f_score (metrics ev tool None)
        in
        List.iter
          (fun ev ->
            Alcotest.(check bool) "phpSAFE > RIPS" true (f ev "phpSAFE" > f ev "RIPS");
            Alcotest.(check bool) "RIPS > Pixy" true (f ev "RIPS" > f ev "Pixy"))
          [ ev2012; ev2014 ]);
    case "no stray (unplanned) false positives anywhere" (fun () ->
        List.iter
          (fun ev ->
            List.iter
              (fun (c : Evalkit.Matching.classified) ->
                Alcotest.(check int)
                  (c.Evalkit.Matching.cl_tool ^ " strays")
                  0
                  (List.length c.Evalkit.Matching.cl_stray_fp))
              (Lazy.force ev).Evalkit.Runner.ev_classified)
          [ ev2012; ev2014 ]);
  ]

let figure2_cases =
  [
    case "distinct detected vulnerabilities: 394 then 586 (+~50%)" (fun () ->
        let u12 = List.length (Lazy.force ev2012).Evalkit.Runner.ev_union in
        let u14 = List.length (Lazy.force ev2014).Evalkit.Runner.ev_union in
        Alcotest.(check int) "2012 union" 394 u12;
        Alcotest.(check int) "2014 union" 586 u14);
    case "some vulnerabilities escape every tool (empty circle)" (fun () ->
        let ev = Lazy.force ev2012 in
        let get name = Evalkit.Runner.classified_for ev name in
        let v =
          Evalkit.Venn.compute
            ~all_real:(Corpus.real_vulns ev.Evalkit.Runner.ev_corpus)
            ~phpsafe:(get "phpSAFE") ~rips:(get "RIPS") ~pixy:(get "Pixy")
        in
        Alcotest.(check int) "hidden 2012" 6 v.Evalkit.Venn.none;
        Alcotest.(check bool) "every tool has unique detections" true
          (v.Evalkit.Venn.only_phpsafe > 0 && v.Evalkit.Venn.only_rips > 0
           && v.Evalkit.Venn.only_pixy > 0));
  ]

let oop_cases =
  [
    case "phpSAFE OOP detections: 151 in 10 plugins, then 179 in 7" (fun () ->
        let module SS = Set.Make (String) in
        let count ev =
          let c = Evalkit.Runner.classified_for (Lazy.force ev) "phpSAFE" in
          let oop = List.filter Corpus.Gt.is_oop_wordpress c.Evalkit.Matching.cl_tp in
          let plugins =
            SS.cardinal
              (SS.of_list
                 (List.map (fun (s : Corpus.Gt.seed) -> s.Corpus.Gt.plugin) oop))
          in
          (List.length oop, plugins)
        in
        Alcotest.(check (pair int int)) "2012" (151, 10) (count ev2012);
        Alcotest.(check (pair int int)) "2014" (179, 7) (count ev2014));
    case "RIPS and Pixy find zero OOP vulnerabilities" (fun () ->
        List.iter
          (fun tool ->
            List.iter
              (fun ev ->
                let c = Evalkit.Runner.classified_for (Lazy.force ev) tool in
                Alcotest.(check int) (tool ^ " oop") 0
                  (List.length
                     (List.filter Corpus.Gt.is_oop_wordpress
                        c.Evalkit.Matching.cl_tp)))
              [ ev2012; ev2014 ])
          [ "RIPS"; "Pixy" ]);
  ]

let inertia_robustness_cases =
  [
    case "inertia: ~40% of 2014 vulnerabilities persisted from 2012" (fun () ->
        let t =
          Evalkit.Inertia.compute
            ~union_2012:(Lazy.force ev2012).Evalkit.Runner.ev_union
            ~union_2014:(Lazy.force ev2014).Evalkit.Runner.ev_union
        in
        Alcotest.(check int) "persisted" 234 t.Evalkit.Inertia.persisted;
        Alcotest.(check bool) "ratio ~0.40" true
          (t.Evalkit.Inertia.persisted_ratio > 0.35
           && t.Evalkit.Inertia.persisted_ratio < 0.45);
        Alcotest.(check bool) "easy share ~24%" true
          (t.Evalkit.Inertia.persisted_easy_ratio > 0.18
           && t.Evalkit.Inertia.persisted_easy_ratio < 0.30));
    case "robustness: phpSAFE fails 1 file in 2012 and 3 in 2014" (fun () ->
        let failed ev =
          (Evalkit.Robustness.of_run
             (Evalkit.Runner.run_for (Lazy.force ev) "phpSAFE"))
            .Evalkit.Robustness.rb_failed_files
        in
        Alcotest.(check int) "2012" 1 (failed ev2012);
        Alcotest.(check int) "2014" 3 (failed ev2014));
    case "robustness: RIPS never fails a file" (fun () ->
        List.iter
          (fun ev ->
            let rb =
              Evalkit.Robustness.of_run
                (Evalkit.Runner.run_for (Lazy.force ev) "RIPS")
            in
            Alcotest.(check int) "failed" 0 rb.Evalkit.Robustness.rb_failed_files)
          [ ev2012; ev2014 ]);
    case "robustness: Pixy fails OOP files, more in 2014" (fun () ->
        let failed ev =
          (Evalkit.Robustness.of_run
             (Evalkit.Runner.run_for (Lazy.force ev) "Pixy"))
            .Evalkit.Robustness.rb_failed_files
        in
        Alcotest.(check bool) "many failures" true (failed ev2012 > 10);
        Alcotest.(check bool) "grows over time" true (failed ev2014 > failed ev2012));
    case "corpus sizes match §V.E" (fun () ->
        let size ev =
          Evalkit.Robustness.corpus_size (Lazy.force ev).Evalkit.Runner.ev_corpus
        in
        Alcotest.(check int) "2012 files" 266 (size ev2012).Evalkit.Robustness.cs_files;
        Alcotest.(check int) "2014 files" 356 (size ev2014).Evalkit.Robustness.cs_files);
  ]

let pattern_report_cases =
  [
    case "per-pattern breakdown matches the calibration plan" (fun () ->
        let rows = Evalkit.Pattern_report.compute (Lazy.force ev2012) in
        let get name =
          List.find
            (fun (r : Evalkit.Pattern_report.row) ->
              r.Evalkit.Pattern_report.pr_pattern = name)
            rows
        in
        let by_tool row tool =
          List.assoc tool row.Evalkit.Pattern_report.pr_by_tool
        in
        (* wpdb flows: phpSAFE-only, all 143 *)
        let wpdb = get "wpdb-oop-xss" in
        Alcotest.(check int) "wpdb seeded" 143 wpdb.Evalkit.Pattern_report.pr_seeded;
        Alcotest.(check int) "wpdb phpSAFE" 143 (by_tool wpdb "phpSAFE");
        Alcotest.(check int) "wpdb RIPS" 0 (by_tool wpdb "RIPS");
        Alcotest.(check int) "wpdb Pixy" 0 (by_tool wpdb "Pixy");
        (* register_globals: Pixy-only *)
        let rg = get "register-globals-echo" in
        Alcotest.(check int) "rg Pixy" 24 (by_tool rg "Pixy");
        Alcotest.(check int) "rg phpSAFE" 0 (by_tool rg "phpSAFE");
        (* direct echo: RIPS sees all 75, phpSAFE misses the deep-file 40 *)
        let direct = get "direct-echo" in
        Alcotest.(check int) "direct RIPS" 75 (by_tool direct "RIPS");
        Alcotest.(check int) "direct phpSAFE" 35 (by_tool direct "phpSAFE");
        (* hidden vulnerabilities stay hidden *)
        let hidden = get "dynamic-hidden" in
        List.iter
          (fun tool -> Alcotest.(check int) ("hidden " ^ tool) 0 (by_tool hidden tool))
          [ "phpSAFE"; "RIPS"; "Pixy" ];
        (* true negatives stay silent for every tool *)
        List.iter
          (fun name ->
            let row = get name in
            Alcotest.(check bool) (name ^ " is a trap") true
              row.Evalkit.Pattern_report.pr_is_trap;
            List.iter
              (fun tool ->
                Alcotest.(check int) (name ^ " " ^ tool) 0 (by_tool row tool))
              [ "phpSAFE"; "RIPS"; "Pixy" ])
          [ "trap-prepare-ok"; "trap-sanitized-ok" ]);
  ]

let ablation_cases =
  [
    case "E8 ablation: each feature carries its expected weight" (fun () ->
        let ev = Lazy.force ev2012 in
        let rows = Evalkit.Ablation.run ev in
        let get name =
          List.find
            (fun (r : Evalkit.Ablation.row) ->
              String.length r.Evalkit.Ablation.ab_variant >= String.length name
              && String.sub r.Evalkit.Ablation.ab_variant 0 (String.length name)
                 = name)
            rows
        in
        let full = get "full" in
        Alcotest.(check int) "full matches Table I" 315
          full.Evalkit.Ablation.ab_metrics.Evalkit.Metrics.tp;
        (* no WordPress profile: every OOP detection disappears *)
        let no_wp = get "no-wordpress-profile" in
        Alcotest.(check int) "no-wp OOP TPs" 0 no_wp.Evalkit.Ablation.ab_oop_tp;
        Alcotest.(check bool) "no-wp loses many TPs" true
          (no_wp.Evalkit.Ablation.ab_metrics.Evalkit.Metrics.tp < 200);
        (* skipping uncalled functions loses hook vulnerabilities *)
        let no_unc = get "no-uncalled-analysis" in
        Alcotest.(check bool) "uncalled analysis matters" true
          (no_unc.Evalkit.Ablation.ab_metrics.Evalkit.Metrics.tp
           < full.Evalkit.Ablation.ab_metrics.Evalkit.Metrics.tp);
        (* per-file mode recovers the memory-failed file *)
        let no_inc = get "no-include-resolution" in
        Alcotest.(check int) "no failed files" 0
          no_inc.Evalkit.Ablation.ab_failed_files;
        (* dropping revert modelling trades FPs for TPs *)
        let no_rev = get "no-revert-modelling" in
        Alcotest.(check bool) "fewer FPs" true
          (no_rev.Evalkit.Ablation.ab_metrics.Evalkit.Metrics.fp
           < full.Evalkit.Ablation.ab_metrics.Evalkit.Metrics.fp);
        Alcotest.(check bool) "fewer TPs too" true
          (no_rev.Evalkit.Ablation.ab_metrics.Evalkit.Metrics.tp
           < full.Evalkit.Ablation.ab_metrics.Evalkit.Metrics.tp);
        (* the future-work guard extension: strictly better precision,
           identical recall *)
        let guard = get "guard-aware" in
        Alcotest.(check int) "same TPs" 315
          guard.Evalkit.Ablation.ab_metrics.Evalkit.Metrics.tp;
        Alcotest.(check bool) "fewer FPs" true
          (guard.Evalkit.Ablation.ab_metrics.Evalkit.Metrics.fp
           < full.Evalkit.Ablation.ab_metrics.Evalkit.Metrics.fp));
  ]

let () =
  Alcotest.run "integration"
    [ ("table I", table1_cases);
      ("figure 2", figure2_cases);
      ("§V.A OOP", oop_cases);
      ("§V.D/§V.E", inertia_robustness_cases);
      ("pattern breakdown", pattern_report_cases);
      ("E8 ablation", ablation_cases) ]
