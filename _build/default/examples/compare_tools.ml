(** Run all three analyzers on the same plugin and compare what each one
    sees — a miniature of the paper's §V.A comparison.  The sample contains
    one vulnerability per "detectability class": visible to everyone, OOP
    (phpSAFE-only), register_globals (Pixy-only) and a WP-sanitizer false
    positive (RIPS/Pixy). *)

let sample =
  {php|<?php
// (a) visible to every tool: superglobal straight into echo
echo '<p>' . $_GET['q'] . '</p>';

// (b) phpSAFE-only: WordPress object method as a taint source
$rows = $wpdb->get_results("SELECT * FROM comments");
foreach ($rows as $row) {
    echo '<li>' . $row->body . '</li>';
}

// (c) Pixy-only: $page_heading is never assigned; with register_globals=1
// an attacker seeds it from the request
echo $page_heading;

// (d) false positive for WP-unaware tools: esc_html is safe
echo esc_html($_GET['msg']);
|php}

(* Pixy fails any file containing OOP constructs, so it gets the same code
   minus the $wpdb block — mirroring how the paper's plugins mix procedural
   and OOP files. *)
let sample_procedural =
  {php|<?php
echo '<p>' . $_GET['q'] . '</p>';
echo $page_heading;
echo esc_html($_GET['msg']);
|php}

let show name (result : Secflow.Report.result) =
  Format.printf "@.-- %s: %d finding(s) --@." name
    (List.length result.Secflow.Report.findings);
  List.iter
    (fun f -> Format.printf "  %a@." Secflow.Report.pp_finding f)
    result.Secflow.Report.findings;
  List.iter
    (fun (path, outcome) ->
      match outcome with
      | Secflow.Report.Analyzed -> ()
      | Secflow.Report.Failed _ -> Format.printf "  (failed to analyze %s)@." path)
    result.Secflow.Report.outcomes

let () =
  print_endline "== comparing phpSAFE, RIPS and Pixy ==";
  show "phpSAFE" (Phpsafe.analyze_source ~file:"sample.php" sample);
  show "RIPS" (Rips.analyze_source ~file:"sample.php" sample);
  show "Pixy (OOP file)" (Pixy.analyze_source ~file:"sample.php" sample);
  show "Pixy (procedural file)"
    (Pixy.analyze_source ~file:"sample-proc.php" sample_procedural);
  print_endline "";
  print_endline "reading guide:";
  print_endline " - phpSAFE: finds (a) and (b); silent on (c) and (d).";
  print_endline " - RIPS:    finds (a); false-positives on (d); misses (b), (c).";
  print_endline " - Pixy:    fails the OOP file outright; on the procedural file";
  print_endline "            finds (a) and (c), false-positives on (d), misses (b)."
