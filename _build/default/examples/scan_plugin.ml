(** Scan a whole multi-file plugin — the paper's mail-subscribe-list
    scenario (§III.E): an OOP WordPress plugin whose stored-XSS flows
    through [$wpdb->get_results] and across [include]d files.

    Run with: [dune exec examples/scan_plugin.exe] *)

let main_file =
  {php|<?php
/* mail-subscribe-list style plugin: main file */
require_once 'includes/list-table.php';
require_once 'includes/settings.php';

function sml_register() {
    add_action('admin_menu', 'sml_menu');
}
sml_register();
|php}

let list_table =
  {php|<?php
/* subscriber table: the §III.E vulnerability. Subscribers are stored in
   the database unsanitized, so any subscriber can inject script into the
   admin page of every other visitor. */
function sml_output_subscribers() {
    global $wpdb;
    $results = $wpdb->get_results("SELECT * FROM " . $wpdb->prefix . "sml");
    foreach ($results as $row) {
        echo '<li>' . $row->sml_name . '</li>';
    }
}
|php}

let settings =
  {php|<?php
/* settings page: one reflected XSS, one properly escaped output */
$tab = isset($_GET['tab']) ? $_GET['tab'] : 'general';
echo '<a href="?tab=' . $tab . '">';
echo '<span>' . esc_html($_GET['notice']) . '</span>';
|php}

let () =
  print_endline "== scanning a multi-file OOP plugin ==";
  let project =
    Phplang.Project.make ~name:"mail-subscribe-list"
      [ { Phplang.Project.path = "mail-subscribe-list.php"; source = main_file };
        { Phplang.Project.path = "includes/list-table.php"; source = list_table };
        { Phplang.Project.path = "includes/settings.php"; source = settings } ]
  in
  let result = Phpsafe.analyze_project project in
  Format.printf "files analyzed: %d, findings: %d@."
    (List.length result.Secflow.Report.outcomes)
    (List.length result.Secflow.Report.findings);
  List.iter
    (fun (f : Secflow.Report.finding) ->
      Format.printf "@.%a@." Secflow.Report.pp_finding f;
      Format.printf "%a" Secflow.Report.pp_trace f)
    result.Secflow.Report.findings;
  print_endline "";
  print_endline
    "expected: the stored XSS via $wpdb->get_results (uncalled function!)";
  print_endline
    "and the reflected XSS on the settings tab; esc_html line stays silent."
