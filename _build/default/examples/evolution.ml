(** Plugin-evolution study in miniature (§V.D): analyze the 2012 and 2014
    versions of one synthetic plugin from the corpus and report which
    vulnerabilities persisted — the paper's "inertia in fixing
    vulnerabilities".

    Run with: [dune exec examples/evolution.exe] *)

module S = Set.Make (String)

let plugin_findings version name =
  let corpus = Corpus.generate version in
  let plugin =
    List.find
      (fun (p : Corpus.Catalog.plugin_output) ->
        String.equal p.Corpus.Catalog.po_name name)
      corpus.Corpus.plugins
  in
  let result = Phpsafe.analyze_project plugin.Corpus.Catalog.po_project in
  (* map findings back to seed ids through the ground truth *)
  let seed_at (f : Secflow.Report.finding) =
    List.find_opt
      (fun (s : Corpus.Gt.seed) ->
        s.Corpus.Gt.file = f.Secflow.Report.sink_pos.Phplang.Ast.file
        && s.Corpus.Gt.line = f.Secflow.Report.sink_pos.Phplang.Ast.line
        && Secflow.Vuln.equal_kind (Corpus.Gt.kind_of s) f.Secflow.Report.kind)
      plugin.Corpus.Catalog.po_seeds
  in
  List.filter_map seed_at result.Secflow.Report.findings
  |> List.filter Corpus.Gt.is_real

let () =
  let name = "mail-subscribe-list" in
  Printf.printf "== evolution of %s between 2012 and 2014 ==\n" name;
  let f2012 = plugin_findings Corpus.Plan.V2012 name in
  let f2014 = plugin_findings Corpus.Plan.V2014 name in
  let ids12 =
    S.of_list (List.map (fun (s : Corpus.Gt.seed) -> s.Corpus.Gt.seed_id) f2012)
  in
  let persisted, fresh =
    List.partition
      (fun (s : Corpus.Gt.seed) -> S.mem s.Corpus.Gt.seed_id ids12)
      f2014
  in
  Printf.printf "2012 version: %d vulnerabilities found by phpSAFE\n"
    (List.length f2012);
  Printf.printf "2014 version: %d vulnerabilities found by phpSAFE\n"
    (List.length f2014);
  Printf.printf " - still present since 2012 (disclosed, never fixed): %d\n"
    (List.length persisted);
  Printf.printf " - introduced after 2012: %d\n" (List.length fresh);
  print_endline "\nsample of persisted vulnerabilities:";
  List.iteri
    (fun i (s : Corpus.Gt.seed) ->
      if i < 5 then
        Printf.printf "  %s %s at %s:%d (%s)\n" s.Corpus.Gt.seed_id
          s.Corpus.Gt.pattern s.Corpus.Gt.file s.Corpus.Gt.line
          (match Corpus.Gt.vector_of s with
          | Some v -> Secflow.Vuln.vector_to_string v
          | None -> "-"))
    persisted
