(** Quickstart: analyze a small vulnerable plugin snippet with phpSAFE and
    print the findings with their data-flow traces.

    Run with: [dune exec examples/quickstart.exe] *)

let vulnerable_plugin =
  {php|<?php
/* A WordPress plugin fragment with two problems and one safe line. */

// 1. reflected XSS: attacker-controlled input echoed unfiltered
$name = $_GET['visitor'];
echo '<h2>Welcome back, ' . $name . '</h2>';

// safe: properly sanitized before output
echo '<p>' . htmlspecialchars($_GET['note']) . '</p>';

// 2. SQL injection through the WordPress database object
$id = $_POST['post_id'];
$wpdb->query("UPDATE wp_posts SET views = views + 1 WHERE id = $id");
|php}

let () =
  print_endline "== phpSAFE quickstart ==";
  let result = Phpsafe.analyze_source ~file:"my-plugin.php" vulnerable_plugin in
  List.iter
    (fun (f : Secflow.Report.finding) ->
      Format.printf "@.%a@." Secflow.Report.pp_finding f;
      Format.printf "data flow:@.%a" Secflow.Report.pp_trace f)
    result.Secflow.Report.findings;
  Format.printf "@.%d vulnerabilities found (expected 2: one XSS, one SQLi)@."
    (List.length result.Secflow.Report.findings)
