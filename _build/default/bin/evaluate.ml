(** Runs the full paper evaluation (both corpus versions, all three tools)
    and prints every table and figure of §V with the paper-reported values
    alongside. *)

let () =
  let ev2012, ev2014 =
    Evalkit.evaluate_and_report ~with_ablation:true Format.std_formatter
  in
  Format.printf "@.-- version 2012 --@.";
  Evalkit.Pattern_report.print Format.std_formatter
    (Evalkit.Pattern_report.compute ev2012);
  Format.printf "@.-- version 2014 --@.";
  Evalkit.Pattern_report.print Format.std_formatter
    (Evalkit.Pattern_report.compute ev2014)
