(** Writes the synthetic plugin corpus to disk as real [.php] trees, plus a
    [ground_truth.tsv] per version — useful for inspecting the generated
    code and for running the CLI against it. *)

let write_file path contents =
  let dir = Filename.dirname path in
  let rec mkdirs d =
    if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mkdirs (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  mkdirs dir;
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let label_string (s : Corpus.Gt.seed) =
  match s.Corpus.Gt.label with
  | Corpus.Gt.Real_vuln { kind; vector; oop_wordpress } ->
      Printf.sprintf "vuln\t%s\t%s\t%b"
        (Secflow.Vuln.kind_to_string kind)
        (Secflow.Vuln.vector_to_string vector)
        oop_wordpress
  | Corpus.Gt.Fp_trap { kind; why } ->
      Printf.sprintf "trap\t%s\t%s\t-" (Secflow.Vuln.kind_to_string kind) why

let dump_version root version =
  let corpus = Corpus.generate version in
  let vdir = Filename.concat root (Corpus.Plan.version_to_string version) in
  List.iter
    (fun (p : Corpus.Catalog.plugin_output) ->
      List.iter
        (fun (f : Phplang.Project.file) ->
          write_file
            (Filename.concat (Filename.concat vdir p.Corpus.Catalog.po_name)
               f.Phplang.Project.path)
            f.Phplang.Project.source)
        p.Corpus.Catalog.po_project.Phplang.Project.files)
    corpus.Corpus.plugins;
  let gt =
    corpus.Corpus.seeds
    |> List.map (fun (s : Corpus.Gt.seed) ->
           Printf.sprintf "%s\t%s\t%s\t%s\t%d\t%s" s.Corpus.Gt.seed_id
             s.Corpus.Gt.pattern s.Corpus.Gt.plugin s.Corpus.Gt.file
             s.Corpus.Gt.line (label_string s))
    |> String.concat "\n"
  in
  write_file (Filename.concat vdir "ground_truth.tsv")
    ("seed\tpattern\tplugin\tfile\tline\tclass\tkind\tvector/why\toop\n" ^ gt ^ "\n");
  let files, loc = Corpus.stats corpus in
  Printf.printf "%s: wrote %d plugins, %d files, %d LOC under %s\n"
    (Corpus.Plan.version_to_string version)
    (List.length corpus.Corpus.plugins)
    files loc vdir

let run root =
  dump_version root Corpus.Plan.V2012;
  dump_version root Corpus.Plan.V2014;
  0

open Cmdliner

let root =
  let doc = "Output directory." in
  Arg.(value & opt string "corpus-out" & info [ "o"; "output" ] ~docv:"DIR" ~doc)

let cmd =
  let doc = "generate the synthetic WordPress-plugin corpus on disk" in
  Cmd.v (Cmd.info "gen_corpus" ~doc) Term.(const run $ root)

let () = exit (Cmd.eval' cmd)
